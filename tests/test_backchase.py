"""Unit tests for the backchase."""

import pytest

import repro.backchase.backchase as bc
from repro.backchase.backchase import (
    BackchaseStats,
    is_minimal,
    minimal_subqueries,
    quick_simplify_conditions,
    simplify_conditions,
    toposort_bindings,
    try_remove_binding,
)
from repro.chase.chase import ChaseEngine, chase
from repro.chase.containment import is_equivalent
from repro.errors import BackchaseError
from repro.query.parser import parse_constraint, parse_query


def q(text):
    return parse_query(text)


class TestToposort:
    def test_reorders_dependencies(self):
        query = q("select struct(X = s) from depts d, d.DProjs s")
        # manually scramble binding order
        from repro.query.ast import PCQuery

        scrambled = PCQuery(query.output, tuple(reversed(query.bindings)), ())
        ordered = toposort_bindings(scrambled)
        assert ordered.binding_vars() == ("d", "s")

    def test_cycle_detected(self):
        from repro.query.ast import Binding, PCQuery, PathOutput
        from repro.query.paths import Attr, Var

        cyclic = PCQuery(
            PathOutput(Var("a")),
            (
                Binding("a", Attr(Var("b"), "X")),
                Binding("b", Attr(Var("a"), "Y")),
            ),
        )
        with pytest.raises(BackchaseError):
            toposort_bindings(cyclic)

    def test_cycle_reported_deterministically(self):
        """The offending cycle is listed in sorted variable order, whatever
        the clause order the search got stuck in."""

        from repro.query.ast import Binding, PCQuery, PathOutput
        from repro.query.paths import Attr, Var

        forward = (
            Binding("a", Attr(Var("b"), "X")),
            Binding("b", Attr(Var("a"), "Y")),
        )
        messages = []
        for bindings in (forward, tuple(reversed(forward))):
            cyclic = PCQuery(PathOutput(Var("a")), bindings)
            with pytest.raises(BackchaseError) as excinfo:
                toposort_bindings(cyclic)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert messages[0] == (
            "cyclic binding dependencies: a in b.X, b in a.Y"
        )

    def test_cycle_report_skips_resolvable_bindings(self):
        """Bindings that toposort *can* place never appear in the report."""

        from repro.query.ast import Binding, PCQuery, PathOutput
        from repro.query.paths import Attr, SName, Var

        cyclic = PCQuery(
            PathOutput(Var("ok")),
            (
                Binding("z", Attr(Var("y"), "X")),
                Binding("y", Attr(Var("z"), "Y")),
                Binding("ok", SName("R")),
            ),
        )
        with pytest.raises(BackchaseError, match="y in z.Y, z in y.X") as excinfo:
            toposort_bindings(cyclic)
        assert "ok" not in str(excinfo.value)


class TestSimplify:
    def test_drops_congruence_implied(self):
        query = q(
            "select struct(A = r.A) from R r, S s "
            "where r.B = s.B and M[r.B] = M[s.B] and dom(M) = dom(M)"
        )
        simplified = simplify_conditions(query)
        assert len(simplified.conditions) == 1

    def test_order_independent(self):
        a = q("select struct(A = r.A) from R r, S s where M[r.B] = M[s.B] and r.B = s.B")
        b = q("select struct(A = r.A) from R r, S s where r.B = s.B and M[r.B] = M[s.B]")
        assert (
            simplify_conditions(a).canonical_key()
            == simplify_conditions(b).canonical_key()
        )

    def test_quick_simplify_catches_residues(self):
        query = q(
            "select struct(A = r.A) from R r, S s "
            "where M[r.B] = M[s.B] and r.B = s.B"
        )
        assert len(quick_simplify_conditions(query).conditions) == 1

    def test_keeps_independent_conditions(self):
        query = q("select struct(A = r.A) from R r, S s where r.B = s.B and r.A = 5")
        assert len(simplify_conditions(query).conditions) == 2


class TestTryRemove:
    def test_tableau_redundant_binding(self):
        """The section 3 minimization example: remove the third R binding."""

        query = q(
            "select struct(A = p.A, B = r.B) from R p, R q, R r "
            "where p.B = q.A and q.B = r.B"
        )
        candidate = try_remove_binding(query, "r", [])
        assert candidate is not None
        assert candidate.binding_vars() == ("p", "q")
        assert "B = q.B" in str(candidate.output)
        assert is_equivalent(candidate, query)

    def test_non_redundant_binding_refused(self):
        query = q(
            "select struct(A = p.A, B = q.B) from R p, R q where p.B = q.A"
        )
        assert try_remove_binding(query, "q", []) is None
        assert try_remove_binding(query, "p", []) is None

    def test_removal_requires_constraint(self):
        query = q(
            "select struct(N = p.PName) from Proj p, depts d where p.PDept = d.DName"
        )
        ric = parse_constraint(
            "forall (p in Proj) -> exists (d in depts) p.PDept = d.DName", "RIC"
        )
        assert try_remove_binding(query, "d", []) is None
        candidate = try_remove_binding(query, "d", [ric])
        assert candidate is not None
        assert candidate.binding_vars() == ("p",)

    def test_output_dependency_blocks_removal(self):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        assert try_remove_binding(query, "s", []) is None

    def test_dependent_binding_resourced(self):
        # removing d requires re-sourcing s ∈ d.DProjs; with no equivalent
        # source available the step must fail
        query = q("select struct(X = s) from depts d, d.DProjs s")
        assert try_remove_binding(query, "d", []) is None

    def test_removing_missing_var_returns_none(self):
        query = q("select struct(A = r.A) from R r")
        assert try_remove_binding(query, "zzz", []) is None

    def test_empty_relation_guard(self):
        # an unused binding cannot be dropped without a nonemptiness proof
        query = q("select struct(A = r.A) from R r, S s")
        assert try_remove_binding(query, "s", []) is None
        nonempty_via = parse_constraint(
            "forall (r in R) -> exists (s in S) true", "ne"
        )
        candidate = try_remove_binding(query, "s", [nonempty_via])
        assert candidate is not None

    def test_paranoid_mode(self):
        query = q(
            "select struct(A = p.A, B = r.B) from R p, R q, R r "
            "where p.B = q.A and q.B = r.B"
        )
        bc.PARANOID_CHECKS = True
        try:
            candidate = try_remove_binding(query, "r", [])
            assert candidate is not None
        finally:
            bc.PARANOID_CHECKS = False


class TestMinimalSubqueries:
    def test_tableau_minimization_normal_form(self):
        query = q(
            "select struct(A = p.A, B = r.B) from R p, R q, R r "
            "where p.B = q.A and q.B = r.B"
        )
        forms = minimal_subqueries(query, [])
        assert len(forms) == 1
        assert len(forms[0].bindings) == 2

    def test_already_minimal(self):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        forms = minimal_subqueries(query, [])
        assert len(forms) == 1
        assert forms[0].canonical_key() == query.canonical_key()

    def test_stats_collected(self):
        query = q(
            "select struct(A = p.A) from R p, R q where p.A = q.A"
        )
        stats = BackchaseStats()
        minimal_subqueries(query, [], stats=stats)
        assert stats.nodes_visited >= 1
        assert stats.normal_forms >= 1

    def test_node_budget_enforced(self):
        query = q(
            "select struct(A = a.A) from R a, R b, R c, R d "
            "where a.A = b.A and b.A = c.A and c.A = d.A"
        )
        with pytest.raises(BackchaseError):
            minimal_subqueries(query, [], max_nodes=1)

    def test_multiple_minimal_forms_under_constraints(self, rs_workload):
        """Section 4 example 2: several genuinely different minimal plans."""

        U = chase(rs_workload.query, rs_workload.constraints).query
        forms = minimal_subqueries(U, rs_workload.constraints)
        keys = {f.canonical_key() for f in forms}
        assert len(keys) == len(forms) >= 4
        # Q itself is among the minimal plans (direct mapping)
        assert rs_workload.query.canonical_key() in keys

    def test_is_minimal(self):
        assert is_minimal(q("select struct(A = r.A) from R r"), [])
        assert not is_minimal(
            q("select struct(A = p.A) from R p, R q where p.A = q.A"), []
        )
