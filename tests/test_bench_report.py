"""Units for the ``make bench-report`` aggregator (``benchmarks/report.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_report_module():
    path = REPO_ROOT / "benchmarks" / "report.py"
    spec = importlib.util.spec_from_file_location("bench_report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_empty_root_degrades_gracefully(tmp_path):
    report = _load_report_module()
    assert "no BENCH_e*.json artifacts" in report.render(report.collect(tmp_path))


def test_known_and_unknown_benchmarks_render(tmp_path):
    report = _load_report_module()
    (tmp_path / "BENCH_e13.json").write_text(
        json.dumps(
            {
                "benchmark": "e13_semcache",
                "tier": "smoke",
                "workloads": [
                    {
                        "workload": "e5_rs",
                        "cold_seconds": 1.0,
                        "warm_seconds": 0.25,
                        "answers_equal": True,
                    }
                ],
            }
        )
    )
    (tmp_path / "BENCH_e16.json").write_text(
        json.dumps(
            {
                "benchmark": "e16_advisor",
                "tier": "smoke",
                "workloads": [
                    {
                        "workload": "e5_rs",
                        "chosen": ["ADV_V0"],
                        "estimated_baseline_total": 100.0,
                        "estimated_tuned_total": 10.0,
                        "empty_steady_seconds": 0.4,
                        "advised_steady_seconds": 0.1,
                    }
                ],
            }
        )
    )
    # a future benchmark nothing knows about yet: listed, not crashed on
    (tmp_path / "BENCH_e99.json").write_text(
        json.dumps({"benchmark": "e99_future", "workloads": [{"workload": "x"}]})
    )
    out = report.render(report.collect(tmp_path))
    assert "E13 semantic result cache" in out and "4.0x" in out
    assert "E16 physical design advisor" in out and "ADV_V0" in out
    assert "e99_future" in out and "- x" in out


def test_unreadable_artifact_is_reported_not_fatal(tmp_path):
    report = _load_report_module()
    (tmp_path / "BENCH_e12.json").write_text("{not json")
    out = report.render(report.collect(tmp_path))
    assert "unreadable" in out


def test_stale_artifact_shape_degrades_to_generic_listing(tmp_path):
    """A known benchmark name whose payload misses expected keys (an old
    artifact) must not abort the whole report."""

    report = _load_report_module()
    (tmp_path / "BENCH_e13.json").write_text(
        json.dumps(
            {
                "benchmark": "e13_semcache",
                "workloads": [{"workload": "e5_rs"}],  # no timing keys
            }
        )
    )
    (tmp_path / "BENCH_e15.json").write_text(
        json.dumps(
            {
                "benchmark": "e15_prepared",
                "tier": "smoke",
                "workloads": [
                    {
                        "workload": "e5_rs",
                        "reoptimized_steady_seconds": 1.0,
                        "prepared_steady_seconds": 0.5,
                    }
                ],
            }
        )
    )
    out = report.render(report.collect(tmp_path))
    assert "- e5_rs" in out          # the stale e13 row still listed
    assert "2.0x" in out             # the healthy e15 row fully rendered


def test_non_dict_payloads_degrade_gracefully(tmp_path):
    report = _load_report_module()
    # top-level array instead of an object
    (tmp_path / "BENCH_e12.json").write_text(json.dumps([1, 2, 3]))
    # known benchmark whose workloads are not dicts
    (tmp_path / "BENCH_e13.json").write_text(
        json.dumps({"benchmark": "e13_semcache", "workloads": ["oops"]})
    )
    out = report.render(report.collect(tmp_path))
    assert "unexpected top-level JSON shape" in out
    assert "- oops" in out


def test_renders_the_repo_root_without_crashing():
    """The live repo root always renders — with the artifact table when
    the bench smokes have run, with the pointer message on a fresh clone
    (BENCH_*.json is gitignored, and CI's tier-1 phase runs before the
    smoke phase that emits them)."""

    report = _load_report_module()
    out = report.render(report.collect(REPO_ROOT))
    assert "BENCH_e12.json" in out or "no BENCH_e*.json artifacts" in out


def test_e18_renders_phase_latency_columns(tmp_path):
    report = _load_report_module()
    (tmp_path / "BENCH_e18.json").write_text(
        json.dumps(
            {
                "benchmark": "e18_obs",
                "tier": "smoke",
                "workloads": [
                    {
                        "workload": "rs",
                        "silent_seconds": 0.40,
                        "traced_seconds": 0.42,
                        "overhead_ratio": 1.05,
                        "spans_traced": 35,
                        "metrics": {
                            "histograms": {
                                "latency.phase.chase": {
                                    "total_seconds": 0.001,
                                    "count": 1,
                                },
                                "latency.phase.backchase": {
                                    "total_seconds": 0.365,
                                    "count": 1,
                                },
                                "latency.phase.exec": {
                                    "total_seconds": 0.030,
                                    "count": 4,
                                },
                                "latency.db.execute": {
                                    "total_seconds": 0.4,
                                    "count": 4,
                                },
                            }
                        },
                    }
                ],
            }
        )
    )
    out = report.render(report.collect(tmp_path))
    assert "E18 observability overhead" in out
    assert "silent 0.400s -> traced 0.420s (x1.05)" in out
    assert "backchase 0.365s/1" in out
    assert "exec 0.030s/4" in out
    # non-phase histograms stay out of the phase columns
    assert "db.execute" not in out


def test_e18_without_metrics_snapshot_degrades_gracefully(tmp_path):
    # an artifact emitted before the metrics field existed (or with a
    # malformed snapshot) still gets its headline row
    report = _load_report_module()
    (tmp_path / "BENCH_e18.json").write_text(
        json.dumps(
            {
                "benchmark": "e18_obs",
                "workloads": [
                    {
                        "workload": "rs",
                        "silent_seconds": 0.40,
                        "traced_seconds": 0.42,
                        "overhead_ratio": 1.05,
                        "spans_traced": 35,
                    },
                    {
                        "workload": "projdept",
                        "silent_seconds": 1.0,
                        "traced_seconds": 1.1,
                        "overhead_ratio": 1.10,
                        "spans_traced": 35,
                        "metrics": {"histograms": "not-a-dict"},
                    },
                ],
            }
        )
    )
    out = report.render(report.collect(tmp_path))
    assert "- rs  silent 0.400s" in out
    assert "- projdept  silent 1.000s" in out
    assert "phases:" not in out
