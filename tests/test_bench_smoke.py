"""Tier-1 smoke runs of the E12 (pruning), E13 (semantic cache), E14
(hybrid rewrites), E15 (prepared queries / plan cache), E16 (physical
design advisor), E17 (parameterized templates), E18 (observability
overhead), E19 (compiled execution) and E20 (plan-quality feedback)
benchmarks (1 small run each).

Keeps the benchmark harnesses honest without inflating suite runtime: the
smallest workloads run once, the acceptance criteria are asserted, and the
measured counters are emitted to ``BENCH_e12.json`` .. ``BENCH_e20.json``
at the repo root (the artifacts ``make bench-smoke`` / CI pick up;
``make bench-report`` tabulates them).

Marked ``bench_smoke`` so they can be selected (``-m bench_smoke``) or
excluded (``-m "not bench_smoke"``) independently of the unit suite.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_OUT = REPO_ROOT / "BENCH_e12.json"
BENCH_E13_OUT = REPO_ROOT / "BENCH_e13.json"
BENCH_E14_OUT = REPO_ROOT / "BENCH_e14.json"
BENCH_E15_OUT = REPO_ROOT / "BENCH_e15.json"
BENCH_E16_OUT = REPO_ROOT / "BENCH_e16.json"
BENCH_E17_OUT = REPO_ROOT / "BENCH_e17.json"
BENCH_E18_OUT = REPO_ROOT / "BENCH_e18.json"
BENCH_E19_OUT = REPO_ROOT / "BENCH_e19.json"
BENCH_E20_OUT = REPO_ROOT / "BENCH_e20.json"


def _load_bench_module(stem: str = "bench_e12_pruning"):
    path = REPO_ROOT / "benchmarks" / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.bench_smoke
def test_e12_smoke_and_emit_json():
    bench = _load_bench_module()
    workloads = [(2, 1), (1, 2)]
    results = [bench.run_comparison(n, k) for n, k in workloads]

    # (2,1) is large enough for the cost bound to bite: full criteria.
    bench.assert_pruning_wins(results[0])
    # (1,2) at minimum must agree on cost and never do more work.
    for result in results:
        assert result["equal_cost"], result
        assert (
            result["pruned"]["candidates_explored"]
            <= result["full"]["candidates_explored"]
        ), result
        assert result["pruned"]["cache_misses"] < result["full"]["cache_misses"]

    BENCH_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e12_pruning",
                "repetitions": 1,
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_OUT.exists()


@pytest.mark.bench_smoke
def test_e13_smoke_and_emit_json():
    bench = _load_bench_module("bench_e13_semcache")

    def measure(which):
        result = bench.run_repeated_workload(which, repetitions=3, scale="smoke")
        if result["warm_seconds"] >= result["cold_seconds"]:
            # Wall-clock comparisons can lose a scheduler race on loaded
            # CI machines; one re-measure keeps the speedup gate without
            # making tier-1 flaky (the margin is ~3-7x in practice).
            result = bench.run_repeated_workload(which, repetitions=3, scale="smoke")
        return result

    results = [measure("e5_rs"), measure("e1_projdept")]

    for result in results:
        bench.assert_cache_effective(result)
        bench.assert_warm_wins(result)
    # the E5 mix must exercise the rewrite tier, not just exact repeats
    assert results[0]["cache"]["rewrite_hits"] > 0, results[0]

    BENCH_E13_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e13_semcache",
                "tier": "smoke",
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_E13_OUT.exists()


@pytest.mark.bench_smoke
def test_e14_smoke_and_emit_json():
    bench = _load_bench_module("bench_e14_hybrid")

    def measure(which):
        result = bench.run_hybrid_comparison(which, repetitions=3, scale="smoke")
        if (
            result["hybrid_steady_seconds"] >= result["cold_steady_seconds"]
            or result["hybrid_steady_seconds"]
            > result["view_only_steady_seconds"] * bench.NOISE_FACTOR
        ):
            # Wall-clock comparisons can lose a scheduler race on loaded
            # CI machines; one re-measure keeps the latency gates without
            # making tier-1 flaky (steady-state margins are >100x in
            # practice).
            result = bench.run_hybrid_comparison(
                which, repetitions=3, scale="smoke"
            )
        return result

    results = [measure("e5_rs"), measure("e1_projdept")]

    for result in results:
        bench.assert_hybrid_effective(result)
        bench.assert_hybrid_wins(result)
        # the headline acceptance criterion: >= 30% of the view-only
        # arm's cold executions answered from the cache in hybrid mode
        assert result["rescue_rate"] >= 0.30, result

    BENCH_E14_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e14_hybrid",
                "tier": "smoke",
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_E14_OUT.exists()


@pytest.mark.bench_smoke
def test_e15_smoke_and_emit_json():
    bench = _load_bench_module("bench_e15_prepared")

    def measure(which):
        result = bench.run_prepared_comparison(which, repetitions=3, scale="smoke")
        if (
            result["prepared_steady_seconds"]
            >= result["reoptimized_steady_seconds"]
        ):
            # Wall-clock comparisons can lose a scheduler race on loaded
            # CI machines; one re-measure keeps the latency gate without
            # making tier-1 flaky (steady-state margins are >50x in
            # practice: plan execution vs full chase & backchase).
            result = bench.run_prepared_comparison(
                which, repetitions=3, scale="smoke"
            )
        return result

    results = [measure("e5_rs"), measure("e1_projdept")]

    for result in results:
        bench.assert_prepared_effective(result)
        bench.assert_prepared_wins(result)

    BENCH_E15_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e15_prepared",
                "tier": "smoke",
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_E15_OUT.exists()


@pytest.mark.bench_smoke
def test_e16_smoke_and_emit_json():
    bench = _load_bench_module("bench_e16_advisor")

    def measure(which):
        result = bench.run_advisor_comparison(which, repetitions=3, scale="smoke")
        # The structural gates (identical answers, in-budget design,
        # estimated win) are deterministic; only the measured-latency gate
        # can lose a scheduler race on loaded CI machines, so re-measure
        # once before failing (margins are >2x in practice).
        if result["advised_steady_seconds"] >= result["empty_steady_seconds"]:
            result = bench.run_advisor_comparison(
                which, repetitions=3, scale="smoke"
            )
        return result

    results = [measure("e5_rs"), measure("e1_projdept")]

    for result in results:
        bench.assert_advisor_effective(result)
        bench.assert_advisor_wins(result)

    BENCH_E16_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e16_advisor",
                "tier": "smoke",
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_E16_OUT.exists()


@pytest.mark.bench_smoke
def test_e17_smoke_and_emit_json():
    bench = _load_bench_module("bench_e17_templates")

    def measure(which):
        result = bench.run_template_comparison(
            which, bindings_per_template=3, repetitions=3, scale="smoke"
        )
        if result["steady_speedup"] < bench.STEADY_SPEEDUP_FLOOR:
            # Wall-clock comparisons can lose a scheduler race on loaded
            # CI machines; one re-measure keeps the >= 10x gate without
            # making tier-1 flaky (margins are >50x in practice: plan
            # execution vs a fresh chase & backchase per binding).
            result = bench.run_template_comparison(
                which, bindings_per_template=3, repetitions=3, scale="smoke"
            )
        return result

    results = [measure("e5_rs"), measure("e1_projdept")]

    for result in results:
        bench.assert_templates_effective(result)
        bench.assert_templates_win(result)

    BENCH_E17_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e17_templates",
                "tier": "smoke",
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_E17_OUT.exists()


@pytest.mark.bench_smoke
def test_e18_smoke_and_emit_json():
    bench = _load_bench_module("bench_e18_obs")

    def measure(which):
        result = bench.run_observability_comparison(
            which, repetitions=4, scale="smoke"
        )
        try:
            bench.assert_observability_cheap(result)
        except AssertionError:
            # The overhead gate is a wall-clock ratio; one scheduler
            # hiccup on a loaded CI machine can lose it.  Re-measure once
            # (the structural criteria below are deterministic and are
            # never retried).
            result = bench.run_observability_comparison(
                which, repetitions=4, scale="smoke"
            )
        return result

    results = [measure("rs"), measure("projdept")]

    for result in results:
        bench.assert_observability_sound(result)
        bench.assert_observability_cheap(result)

    BENCH_E18_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e18_obs",
                "tier": "smoke",
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_E18_OUT.exists()


@pytest.mark.bench_smoke
def test_e19_smoke_and_emit_json():
    bench = _load_bench_module("bench_e19_compiled")

    def measure(which):
        result = bench.run_compiled_comparison(
            which, repetitions=4, scale="smoke"
        )
        if result["steady_speedup"] < bench.SMOKE_SPEEDUP_FLOOR:
            # Wall-clock comparisons can lose a scheduler race on loaded
            # CI machines; one re-measure keeps the speedup gate without
            # making tier-1 flaky (margins are >50x in practice: a fused
            # loop over column arrays vs per-tuple env-dict streaming).
            result = bench.run_compiled_comparison(
                which, repetitions=4, scale="smoke"
            )
        return result

    results = [measure("e8_rs"), measure("e9_projdept")]

    for result in results:
        # answers identical across compiled/interpreted/reference, no
        # silent fallback — deterministic, never retried
        bench.assert_compiled_effective(result)
        bench.assert_compiled_win(result, floor=bench.SMOKE_SPEEDUP_FLOOR)

    BENCH_E19_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e19_compiled",
                "tier": "smoke",
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_E19_OUT.exists()


@pytest.mark.bench_smoke
def test_e20_smoke_and_emit_json():
    bench = _load_bench_module("bench_e20_feedback")

    def measure():
        result = bench.run_feedback_comparison(
            "drift", repetitions=5, scale="smoke"
        )
        try:
            bench.assert_feedback_cheap(result)
            bench.assert_feedback_recovers(result)
        except AssertionError:
            # Both gates are wall-clock ratios; one scheduler hiccup on a
            # loaded CI machine can lose either.  Re-measure once (the
            # structural criteria below are deterministic and never
            # retried; margins are ~15-25x on the recovery gate).
            result = bench.run_feedback_comparison(
                "drift", repetitions=5, scale="smoke"
            )
        return result

    result = measure()

    bench.assert_feedback_sound(result)
    bench.assert_feedback_cheap(result)
    bench.assert_feedback_recovers(result)

    BENCH_E20_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e20_feedback",
                "tier": "smoke",
                "workloads": [result],
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_E20_OUT.exists()
