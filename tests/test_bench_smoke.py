"""Tier-1 smoke run of the E12 pruning benchmark (1 repetition).

Keeps the benchmark harness honest without inflating suite runtime: the
two smallest E8 scaling workloads are optimized once under both
strategies, the E12 acceptance criteria are asserted, and the measured
counters are emitted to ``BENCH_e12.json`` at the repo root (the artifact
``make bench-smoke`` / CI pick up).

Marked ``bench_smoke`` so it can be selected (``-m bench_smoke``) or
excluded (``-m "not bench_smoke"``) independently of the unit suite.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_OUT = REPO_ROOT / "BENCH_e12.json"


def _load_bench_module():
    path = REPO_ROOT / "benchmarks" / "bench_e12_pruning.py"
    spec = importlib.util.spec_from_file_location("bench_e12_pruning", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.bench_smoke
def test_e12_smoke_and_emit_json():
    bench = _load_bench_module()
    workloads = [(2, 1), (1, 2)]
    results = [bench.run_comparison(n, k) for n, k in workloads]

    # (2,1) is large enough for the cost bound to bite: full criteria.
    bench.assert_pruning_wins(results[0])
    # (1,2) at minimum must agree on cost and never do more work.
    for result in results:
        assert result["equal_cost"], result
        assert (
            result["pruned"]["candidates_explored"]
            <= result["full"]["candidates_explored"]
        ), result
        assert result["pruned"]["cache_misses"] < result["full"]["cache_misses"]

    BENCH_OUT.write_text(
        json.dumps(
            {
                "benchmark": "e12_pruning",
                "repetitions": 1,
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert BENCH_OUT.exists()
