"""Tests for the bottom-up subset enumeration (section 5's other bound)."""

import pytest

from repro.backchase.backchase import minimal_subqueries
from repro.backchase.bottomup import (
    bottom_up_minimal_plans,
    enumerate_equivalent_subqueries,
    restrict_to_bindings,
)
from repro.chase.chase import chase
from repro.chase.containment import is_equivalent
from repro.query.parser import parse_constraint, parse_query


def q(text):
    return parse_query(text)


@pytest.fixture
def view_scenario():
    deps = [
        parse_constraint(
            "forall (r in R, s in S) where r.B = s.B -> exists (v in V) "
            "v.A = r.A and v.C = s.C",
            "cV",
        ),
        parse_constraint(
            "forall (v in V) -> exists (r in R, s in S) r.B = s.B and "
            "v.A = r.A and v.C = s.C",
            "cV'",
        ),
    ]
    query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
    universal = chase(query, deps).query
    return query, universal, deps


class TestRestrictToBindings:
    def test_full_set_is_identity_modulo_simplification(self, view_scenario):
        _, universal, deps = view_scenario
        keep = frozenset(universal.binding_vars())
        result = restrict_to_bindings(universal, keep, deps)
        assert result is not None
        assert set(result.binding_vars()) == keep

    def test_view_only_subset(self, view_scenario):
        query, universal, deps = view_scenario
        view_var = next(
            b.var for b in universal.bindings if str(b.source) == "V"
        )
        result = restrict_to_bindings(universal, frozenset({view_var}), deps)
        assert result is not None
        assert result.schema_names() == frozenset({"V"})
        assert is_equivalent(result, query, deps)

    def test_inequivalent_subset_rejected(self, view_scenario):
        _, universal, deps = view_scenario
        r_var = next(b.var for b in universal.bindings if str(b.source) == "R")
        assert restrict_to_bindings(universal, frozenset({r_var}), deps) is None

    def test_unknown_vars_rejected(self, view_scenario):
        _, universal, deps = view_scenario
        assert restrict_to_bindings(universal, frozenset({"ghost"}), deps) is None


class TestCrossValidation:
    def test_matches_backchase_on_views(self, view_scenario):
        _, universal, deps = view_scenario
        top_down = {f.canonical_key() for f in minimal_subqueries(universal, deps)}
        bottom_up = {
            f.canonical_key() for f in bottom_up_minimal_plans(universal, deps)
        }
        assert top_down == bottom_up

    def test_matches_backchase_on_rs_workload(self, rs_workload):
        universal = chase(rs_workload.query, rs_workload.constraints).query
        top_down = {
            f.canonical_key()
            for f in minimal_subqueries(universal, rs_workload.constraints)
        }
        bottom_up = {
            f.canonical_key()
            for f in bottom_up_minimal_plans(universal, rs_workload.constraints)
        }
        assert top_down == bottom_up

    def test_matches_backchase_on_tableau_minimization(self):
        query = q(
            "select struct(A = p.A, B = r.B) from R p, R q, R r "
            "where p.B = q.A and q.B = r.B"
        )
        top_down = {f.canonical_key() for f in minimal_subqueries(query, [])}
        bottom_up = {f.canonical_key() for f in bottom_up_minimal_plans(query, [])}
        assert top_down == bottom_up

    def test_equivalent_subqueries_all_equivalent(self, view_scenario):
        query, universal, deps = view_scenario
        for keep, candidate in enumerate_equivalent_subqueries(
            universal, deps
        ).items():
            assert is_equivalent(candidate, query, deps), (keep, str(candidate))

    def test_minimality_by_subset_inclusion(self, view_scenario):
        _, universal, deps = view_scenario
        equivalent = enumerate_equivalent_subqueries(universal, deps)
        minimal_sets = [
            keep
            for keep in equivalent
            if not any(other < keep for other in equivalent)
        ]
        assert len(minimal_sets) == len(bottom_up_minimal_plans(universal, deps))
