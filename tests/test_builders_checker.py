"""Unit tests for constraint builders and the instance-level checker."""

import pytest

from repro.constraints.builders import (
    foreign_key,
    inclusion,
    inverse_relationship,
    key_constraint,
    member_foreign_key,
    nonempty_entries,
)
from repro.constraints.checker import check_all, holds, violations
from repro.model.instance import Instance
from repro.model.values import DictValue, Oid, Row


@pytest.fixture
def consistent():
    d0 = Oid("Dept", 0)
    dept = DictValue({d0: Row(DName="D0", DProjs=frozenset({"P1", "P2"}))})
    inst = Instance(
        {
            "Proj": frozenset(
                {
                    Row(PName="P1", PDept="D0"),
                    Row(PName="P2", PDept="D0"),
                }
            ),
            "Dept": dept,
            "depts": frozenset({d0}),
            "SI": DictValue(
                {"D0": frozenset({Row(PName="P1", PDept="D0"), Row(PName="P2", PDept="D0")})}
            ),
        }
    )
    inst.register_class("Dept", "Dept")
    return inst


class TestKeyConstraint:
    def test_holds_on_unique(self, consistent):
        assert holds(key_constraint("k", "Proj", "PName"), consistent)

    def test_violated_on_duplicates(self, consistent):
        consistent["Proj"] = consistent["Proj"] | {Row(PName="P1", PDept="D9")}
        dep = key_constraint("k", "Proj", "PName")
        assert not holds(dep, consistent)
        witnesses = list(violations(dep, consistent, limit=5))
        assert witnesses


class TestForeignKey:
    def test_holds(self, consistent):
        assert holds(foreign_key("fk", "Proj", "PDept", "depts", "DName"), consistent)

    def test_violated_by_dangling(self, consistent):
        consistent["Proj"] = consistent["Proj"] | {Row(PName="P9", PDept="Nowhere")}
        assert not holds(
            foreign_key("fk", "Proj", "PDept", "depts", "DName"), consistent
        )


class TestMemberForeignKey:
    def test_holds(self, consistent):
        dep = member_foreign_key("ric", "depts", "DProjs", "Proj", "PName")
        assert holds(dep, consistent)

    def test_violated_by_phantom_member(self, consistent):
        d1 = Oid("Dept", 1)
        dept = DictValue(
            dict(consistent["Dept"].items())
            | {d1: Row(DName="D1", DProjs=frozenset({"Phantom"}))}
        )
        consistent["Dept"] = dept
        consistent["depts"] = consistent["depts"] | {d1}
        dep = member_foreign_key("ric", "depts", "DProjs", "Proj", "PName")
        assert not holds(dep, consistent)


class TestInverseRelationship:
    def test_pair_holds(self, consistent):
        for dep in inverse_relationship(
            "INV", "depts", "DProjs", "Proj", "PName", "PDept", "DName"
        ):
            assert holds(dep, consistent), dep.name

    def test_forward_violated(self, consistent):
        # a project claims membership in D0 but points elsewhere
        consistent["Proj"] = frozenset(
            {Row(PName="P1", PDept="D9"), Row(PName="P2", PDept="D0")}
        )
        inv1 = inverse_relationship(
            "INV", "depts", "DProjs", "Proj", "PName", "PDept", "DName"
        )[0]
        assert not holds(inv1, consistent)


class TestInclusionAndNonempty:
    def test_inclusion(self, consistent):
        from repro.query.paths import Dom, SName

        dep = inclusion("inc", Dom(SName("Dept")), SName("depts"))
        assert holds(dep, consistent)
        dep_rev = inclusion("inc2", SName("depts"), Dom(SName("Dept")))
        assert holds(dep_rev, consistent)

    def test_nonempty_entries(self, consistent):
        assert holds(nonempty_entries("ne", "SI"), consistent)
        consistent["SI"] = DictValue({"D0": frozenset(), "X": frozenset({Row(A=1)})})
        assert not holds(nonempty_entries("ne", "SI"), consistent)


class TestCheckAll:
    def test_reports_only_failures(self, consistent):
        deps = [
            key_constraint("good", "Proj", "PName"),
            foreign_key("alsogood", "Proj", "PDept", "depts", "DName"),
        ]
        assert check_all(deps, consistent) == []
        consistent["Proj"] = consistent["Proj"] | {Row(PName="P9", PDept="Nowhere")}
        failures = check_all(deps, consistent)
        assert [name for name, _ in failures] == ["alsogood"]

    def test_egd_checking(self, consistent):
        # EGD with equality conclusion over premise env
        from repro.query.parser import parse_constraint

        dep = parse_constraint(
            "forall (p in Proj, q in Proj) where p.PName = q.PName -> p = q", "key"
        )
        assert holds(dep, consistent)
