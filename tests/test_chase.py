"""Unit tests for the chase engine."""

import pytest

from repro.chase.chase import (
    ChaseEngine,
    apply_chase_step,
    chase,
    chase_once,
    conclusion_satisfied,
    find_applicable_hom,
)
from repro.chase.congruence import build_congruence
from repro.errors import ChaseNonTermination
from repro.query.parser import parse_constraint, parse_query


class TestChaseStep:
    def test_section3_example(self):
        """The displayed chase step of section 3: Q chased with dJI."""

        q = parse_query(
            "select struct(PN = s, PB = p.Budg, DN = d.DName) "
            "from depts d, d.DProjs s, Proj p "
            'where s = p.PName and p.CustName = "CitiBank"'
        )
        dji = parse_constraint(
            "forall (d in depts, s in d.DProjs, p in Proj) where s = p.PName "
            "-> exists (j in JI) j.DOID = d and j.PN = p.PName",
            "dJI",
        )
        result = chase(q, [dji])
        assert len(result.steps) == 1
        chased = result.query
        assert len(chased.bindings) == 4
        assert "JI" in chased.schema_names()
        # the new conditions of the paper's displayed result
        text = str(chased)
        assert ".DOID = d" in text
        assert ".PN = p.PName" in text

    def test_step_not_applied_when_satisfied(self):
        q = parse_query(
            "select struct(A = r.A) from R r, V v where v.A = r.A"
        )
        cv = parse_constraint(
            "forall (r in R) -> exists (v in V) v.A = r.A", "cV"
        )
        result = chase(q, [cv])
        assert result.steps == []
        assert result.query is q

    def test_egd_adds_condition(self):
        q = parse_query(
            "select struct(A = d.DName) from depts d, d.DProjs s, Proj p "
            "where s = p.PName"
        )
        inv1 = parse_constraint(
            "forall (d in depts, s in d.DProjs, p in Proj) where s = p.PName "
            "-> p.PDept = d.DName",
            "INV1",
        )
        result = chase(q, [inv1])
        assert len(result.steps) == 1
        assert any("PDept" in str(c) for c in result.query.conditions)
        # re-chasing is a fixpoint
        assert chase(result.query, [inv1]).steps == []

    def test_premise_conditions_respected(self):
        q = parse_query("select struct(A = r.A) from R r, S s")  # no join cond
        cv = parse_constraint(
            "forall (r in R, s in S) where r.B = s.B -> exists (v in V) v.A = r.A",
            "cV",
        )
        assert chase(q, [cv]).steps == []

    def test_inverse_pair_terminates(self):
        q = parse_query("select struct(A = r.A) from R r")
        cv = parse_constraint(
            "forall (r in R) -> exists (v in V) v.A = r.A", "cV"
        )
        cv_inv = parse_constraint(
            "forall (v in V) -> exists (r in R) v.A = r.A", "cV'"
        )
        result = chase(q, [cv, cv_inv])
        # cV fires once; cV' is then satisfied by the original r
        assert [s.constraint for s in result.steps] == ["cV"]

    def test_chase_deterministic(self):
        q = parse_query("select struct(A = r.A) from R r")
        deps = [
            parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cV"),
            parse_constraint("forall (r in R) -> exists (w in W) w.A = r.A", "cW"),
        ]
        a = chase(q, deps).query
        b = chase(q, deps).query
        assert str(a) == str(b)
        assert [s.constraint for s in chase(q, deps).steps] == ["cV", "cW"]

    def test_nontermination_detected(self):
        # x in R generates y in R with y.P = x ... fresh every time (not full)
        q = parse_query("select struct(A = r.A) from R r")
        bad = parse_constraint(
            "forall (x in R) -> exists (y in R) y.Parent = x", "loop"
        )
        with pytest.raises(ChaseNonTermination):
            chase(q, [bad], max_steps=10)


class TestApplicability:
    def test_find_applicable_hom(self):
        q = parse_query("select struct(A = r.A) from R r")
        cv = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cV")
        cc = build_congruence(q)
        hom = find_applicable_hom(cv, q, cc)
        assert hom is not None
        chased, step = apply_chase_step(q, cv, hom)
        assert step.constraint == "cV"
        assert len(chased.bindings) == 2
        cc2 = build_congruence(chased)
        assert conclusion_satisfied(cv, hom, chased, cc2)

    def test_chase_once_none_at_fixpoint(self):
        q = parse_query("select struct(A = r.A) from R r, V v where v.A = r.A")
        cv = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cV")
        assert chase_once(q, [cv]) is None


class TestChaseEngine:
    def test_cache_hit_on_isomorphic_queries(self):
        cv = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cV")
        engine = ChaseEngine([cv])
        a = parse_query("select struct(A = r.A) from R r")
        b = parse_query("select struct(A = zz.A) from R zz")
        engine.chase(a)
        misses = engine.cache_misses
        engine.chase(b)
        assert engine.cache_misses == misses
        assert engine.cache_hits >= 1

    def test_chase_with_cc_shared(self):
        cv = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cV")
        engine = ChaseEngine([cv])
        q = parse_query("select struct(A = r.A) from R r")
        chased1, cc1 = engine.chase_with_cc(q)
        chased2, cc2 = engine.chase_with_cc(q)
        assert chased1 is chased2
        assert cc1 is cc2
