"""Tests for the command-line interface."""

import pytest

from repro.cli import load_constraints, main
from repro.model.ddl import PROJDEPT_DDL


@pytest.fixture
def files(tmp_path):
    query = tmp_path / "q.oql"
    query.write_text("select r.A from R r where r.B = 5\n")
    constraints = tmp_path / "c.epcd"
    constraints.write_text(
        "# secondary index on R.B\n"
        "SB1: forall (r in R) -> exists (k in dom(SB), t in SB[k]) "
        "k = r.B and r = t\n"
        "SB2: forall (k in dom(SB), t in SB[k]) -> exists (r in R) "
        "k = r.B and r = t\n"
    )
    ddl = tmp_path / "schema.ddl"
    ddl.write_text(PROJDEPT_DDL)
    return tmp_path, query, constraints, ddl


class TestLoadConstraints:
    def test_named_and_comments(self, files):
        _, _, constraints, _ = files
        deps = load_constraints(str(constraints))
        assert [d.name for d in deps] == ["SB1", "SB2"]

    def test_bad_line_reports_location(self, files, tmp_path):
        bad = tmp_path / "bad.epcd"
        bad.write_text("forall banana\n")
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="bad.epcd:1"):
            load_constraints(str(bad))


class TestCommands:
    def test_optimize(self, files, capsys):
        _, query, constraints, _ = files
        code = main(
            [
                "optimize",
                "--query",
                str(query),
                "--constraints",
                str(constraints),
                "--physical",
                "R,SB",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "universal plan" in out
        assert "SB" in out

    def test_optimize_strategy_flag(self, files, capsys):
        _, query, constraints, _ = files
        reports = {}
        for strategy in ("pruned", "full"):
            code = main(
                [
                    "optimize",
                    "--query",
                    str(query),
                    "--constraints",
                    str(constraints),
                    "--physical",
                    "R,SB",
                    "--strategy",
                    strategy,
                ]
            )
            assert code == 0
            reports[strategy] = capsys.readouterr().out
        assert "backchase[pruned]" in reports["pruned"]
        assert "backchase[full]" in reports["full"]
        # both strategies must surface the same winner (the '->' line)
        best = {
            s: next(l for l in out.splitlines() if " -> " in l)
            for s, out in reports.items()
        }
        assert best["pruned"] == best["full"]

    def test_optimize_param_binds_template(self, files, tmp_path, capsys):
        _, _, constraints, _ = files
        template = tmp_path / "t.oql"
        template.write_text("select r.A from R r where r.B = $b\n")
        code = main(
            [
                "optimize",
                "--query",
                str(template),
                "--constraints",
                str(constraints),
                "--physical",
                "R,SB",
                "--param",
                "b=5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "universal plan" in out
        # bound before optimizing: the reported plans carry the constant
        assert "$b" not in out
        assert "SB" in out

    def test_optimize_unbound_template_prompts_for_param(
        self, files, tmp_path, capsys
    ):
        _, _, constraints, _ = files
        template = tmp_path / "t.oql"
        template.write_text("select r.A from R r where r.B = $b\n")
        code = main(
            [
                "optimize",
                "--query",
                str(template),
                "--constraints",
                str(constraints),
                "--physical",
                "R,SB",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "template with parameters $b (bind with --param)" in out
        # the template itself still optimizes ($b is an opaque constant)
        assert "universal plan" in out

    def test_optimize_param_rejects_malformed_binding(self, files, capsys):
        _, query, constraints, _ = files
        code = main(
            [
                "optimize",
                "--query",
                str(query),
                "--constraints",
                str(constraints),
                "--param",
                "not-a-binding",
            ]
        )
        assert code == 1
        assert "NAME=VALUE" in capsys.readouterr().err

    def test_chase(self, files, capsys):
        _, query, constraints, _ = files
        code = main(
            ["chase", "--query", str(query), "--constraints", str(constraints)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "universal plan:" in out
        assert "chase[SB1]" in out

    def test_minimize(self, files, tmp_path, capsys):
        redundant = tmp_path / "m.oql"
        redundant.write_text(
            "select struct(A = p.A, B = r.B) from R p, R q, R r "
            "where p.B = q.A and q.B = r.B\n"
        )
        code = main(["minimize", "--query", str(redundant)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count(" R ") == 2 or "R p, R q" in out.replace("\n", " ")

    def test_check_with_ddl(self, files, capsys):
        _, _, constraints, ddl = files
        code = main(
            ["check", "--ddl", str(ddl), "--constraints", str(constraints)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "constraints OK" in out
        assert "EGD" in out and "TGD" in out

    def test_check_with_class_encoding(self, files, capsys):
        _, _, _, ddl = files
        main(["check", "--ddl", str(ddl)])
        base = capsys.readouterr().out
        main(["check", "--ddl", str(ddl), "--encode-classes"])
        extended = capsys.readouterr().out
        assert int(extended.split()[-3]) > int(base.split()[-3])

    def test_optimize_verbose_prints_counters(self, files, capsys):
        _, query, constraints, _ = files
        code = main(
            [
                "optimize",
                "--query",
                str(query),
                "--constraints",
                str(constraints),
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backchase counters:" in out
        for counter in (
            "nodes_visited",
            "candidates_explored",
            "candidates_pruned",
            "cache_hits",
            "cache_misses",
        ):
            assert counter in out

    def test_optimize_cache_reuses_earlier_query(self, files, tmp_path, capsys):
        _, query, _, _ = files
        contained = tmp_path / "q2.oql"
        contained.write_text("select r.A from R r where r.B = 5 and r.A = 1\n")
        code = main(
            [
                "optimize",
                "--cache",
                "--verbose",
                "--query",
                str(query),
                "--query",
                str(contained),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "semantic cache: rewritten onto _SC" in out
        assert "cache counters:" in out
        assert "rewrite_hits: 1" in out
        assert "lookups: 2" in out
        assert "misses: 1" in out

    def test_optimize_without_cache_never_mentions_cache(self, files, capsys):
        _, query, constraints, _ = files
        main(["optimize", "--query", str(query), "--constraints", str(constraints)])
        out = capsys.readouterr().out
        assert "semantic cache" not in out

    def test_missing_file_is_error(self, capsys):
        code = main(["optimize", "--query", "/nonexistent/q.oql"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_parse_error_is_error(self, files, tmp_path, capsys):
        bad = tmp_path / "bad.oql"
        bad.write_text("select from nothing\n")
        code = main(["minimize", "--query", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestServeRepl:
    def _run(self, monkeypatch, capsys, lines, argv=None):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("".join(l + "\n" for l in lines)))
        code = main(["serve-repl", "--workload", "rs"] + (argv or []))
        assert code == 0
        return capsys.readouterr().out

    def test_cold_exact_rewrite_flow(self, monkeypatch, capsys):
        join = (
            "select struct(A = r.A, B = s.B, C = s.C) from R r, S s "
            "where r.B = s.B"
        )
        contained = (
            "select struct(A = r.A) from R r, S s where r.B = s.B and s.C = 3"
        )
        # --no-hybrid pins the all-or-nothing rewrite tier: in hybrid mode
        # the optimizer may (correctly) prefer a base plan here.
        out = self._run(
            monkeypatch,
            capsys,
            [join, join, contained, ".stats", ".views", ".quit"],
            argv=["--no-hybrid"],
        )
        assert "[cold]" in out
        assert "[exact via _SC" in out
        assert "[rewrite via _SC" in out
        assert "exact_hits=1" in out
        assert "rewrite_hits=1" in out
        assert "tuples" in out  # .views listing
        assert out.strip().endswith("bye")

    def test_hybrid_flow_serves_partial_hit(self, monkeypatch, capsys):
        # Warm with a selective selection on R, then join its result with
        # base S: only the hybrid tier can serve this (the R-part is cached,
        # S is not), and the mode is reported both at startup and per query.
        warm = "select struct(A = r.A, B = r.B) from R r where r.A = 1"
        partial = (
            "select struct(A = r.A, C = s.C) from R r, S s "
            "where r.B = s.B and r.A = 1"
        )
        out = self._run(
            monkeypatch, capsys, [warm, partial, ".stats", ".quit"]
        )
        assert "semantic cache enabled (hybrid)" in out
        assert "[hybrid via _SC" in out
        assert "hybrid_hits=1" in out
        view_only = self._run(
            monkeypatch, capsys, [warm, partial, ".quit"], argv=["--no-hybrid"]
        )
        assert "semantic cache enabled (view-only)" in view_only
        assert "[hybrid" not in view_only

    def test_no_cache_flag_serves_cold_only(self, monkeypatch, capsys):
        query = "select struct(B = s.B) from S s"
        out = self._run(monkeypatch, capsys, [query, query], argv=["--no-cache"])
        assert out.count("[cold]") == 2
        assert "semantic cache disabled" in out

    def test_bad_query_keeps_serving(self, monkeypatch, capsys):
        out = self._run(
            monkeypatch,
            capsys,
            ["select banana", "select struct(B = s.B) from S s", ".quit"],
        )
        assert "error:" in out
        assert "[cold]" in out

    def test_help_and_eof(self, monkeypatch, capsys):
        out = self._run(monkeypatch, capsys, [".help"])
        assert ".stats" in out
        assert "bye" in out

    def test_stats_renders_the_full_metrics_registry(self, monkeypatch, capsys):
        # .stats and \metrics are the same surface: the registry snapshot
        # with the plan-cache and semantic-cache legacy families as sources.
        out = self._run(monkeypatch, capsys, [".stats", ".quit"])
        assert "plan_cache: hits=0, misses=0" in out
        assert "invalidations=0" in out
        assert "semcache: lookups=0" in out
        assert "slow queries" in out

    def test_metrics_command_matches_stats(self, monkeypatch, capsys):
        query = "select struct(B = s.B) from S s"
        out = self._run(monkeypatch, capsys, [query, "\\metrics", ".quit"])
        assert "semcache: lookups=1" in out
        assert "plan_cache:" in out

    def test_timing_toggles_request_traces(self, monkeypatch, capsys):
        query = "select struct(B = s.B) from S s"
        out = self._run(
            monkeypatch,
            capsys,
            [query, "\\timing", query, "\\timing", query, ".quit"],
        )
        assert "timing on" in out and "timing off" in out
        # exactly the traced request prints a timeline
        assert out.count("query report (request") == 1
        assert "session.run" in out
        assert "semcache.exact" in out  # the repeat hit the exact tier

    def test_set_binds_template_parameters(self, monkeypatch, capsys):
        template = (
            "select struct(A = r.A) from R r, S s "
            "where r.B = s.B and s.C = $c"
        )
        out = self._run(
            monkeypatch,
            capsys,
            [
                template,  # unbound: must error, not crash the loop
                "\\set c 3",
                "\\set",  # listing shows the binding
                template,  # cold execution under c=3
                template,  # exact hit for the same (template, binding)
                "\\unset c",
                template,  # unbound again after \unset
                ".quit",
            ],
        )
        assert out.count("error:") == 2
        assert "unbound parameter" in out
        assert "$c = 3" in out
        assert "[cold]" in out
        assert "[exact via _SC" in out

    def test_set_usage_errors_keep_serving(self, monkeypatch, capsys):
        out = self._run(
            monkeypatch,
            capsys,
            ["\\set c", "\\unset", "\\set", ".quit"],
        )
        assert "usage: \\set NAME VALUE" in out
        assert "usage: \\unset NAME" in out
        assert "(no bindings)" in out


class TestTune:
    def test_tune_reports_a_design(self, capsys):
        code = main(["tune", "--workload", "rs", "--budget", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "physical design advisor" in out
        assert "chosen design" in out
        assert "total estimated workload cost" in out
        # the rs canonical query (R join S) admits an advisor structure
        assert "ADV_" in out

    def test_tune_apply_installs_and_reruns(self, tmp_path, capsys):
        query = tmp_path / "q.oql"
        query.write_text(
            "select struct(A = r.A, B = s.B, C = s.C) from R r, S s "
            "where r.B = s.B"
        )
        code = main(
            [
                "tune",
                "--workload",
                "rs",
                "--query",
                str(query),
                "--budget",
                "1",
                "--sample",
                "100",
                "--apply",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "installed: ADV_" in out
        assert "rows in" in out

    def test_tune_zero_budget_reports_empty_design(self, capsys):
        code = main(["tune", "--workload", "rs", "--max-tuples", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "empty — no candidate beat the current design" in out


class TestOptimizeAnalyze:
    def test_workload_analyze_prints_operator_table(self, tmp_path, capsys):
        query = tmp_path / "q.oql"
        query.write_text(
            "select struct(A = r.A) from R r, S s where r.B = s.B\n"
        )
        code = main(
            ["optimize", "--query", str(query), "--workload", "rs", "--analyze"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "universal plan" in out  # the optimize report still prints
        assert "EXPLAIN ANALYZE" in out
        assert "est rows" in out and "self ms" in out
        # the workload's statistics inform the estimates (no bare '-')
        assert "estimated cost" in out

    def test_workload_defaults_to_the_canonical_query(self, capsys):
        code = main(["optimize", "--workload", "rs", "--analyze"])
        assert code == 0
        out = capsys.readouterr().out
        assert "universal plan" in out
        assert "EXPLAIN ANALYZE" in out

    def test_query_still_required_without_a_workload(self, capsys):
        code = main(["optimize"])
        assert code == 1
        assert "--query is required" in capsys.readouterr().err

    def test_analyze_requires_a_workload(self, files, capsys):
        _, query, constraints, _ = files
        code = main(
            [
                "optimize",
                "--query",
                str(query),
                "--constraints",
                str(constraints),
                "--analyze",
            ]
        )
        assert code == 1
        assert "--workload" in capsys.readouterr().err

    def test_workload_rejects_schema_files(self, files, capsys):
        _, query, constraints, _ = files
        code = main(
            [
                "optimize",
                "--query",
                str(query),
                "--constraints",
                str(constraints),
                "--workload",
                "rs",
            ]
        )
        assert code == 1
        assert "drop --ddl/--constraints/--physical" in capsys.readouterr().err


class TestMetricsCommand:
    def test_default_mix_renders_registry_and_slow_log(self, capsys):
        code = main(["metrics", "--workload", "rs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        assert "semcache: lookups=2" in out  # --repeat defaults to 2
        assert "exact_hits=1" in out  # the second pass hit the cache
        assert "plan_cache:" in out
        assert "slow queries" in out

    def test_json_snapshot_parses(self, capsys):
        import json

        code = main(["metrics", "--workload", "rs", "--json"])
        assert code == 0
        snap = json.loads(capsys.readouterr().out)
        assert set(snap) >= {"counters", "sources", "slow_queries", "tracing"}
        assert snap["sources"]["semcache"]["exact_hits"] == 1
        assert snap["tracing"]["enabled"] is False

    def test_trace_prints_the_request_timeline(self, capsys):
        code = main(["metrics", "--workload", "rs", "--trace", "--repeat", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "query report (request" in out
        assert "session.run" in out
        assert "latency.session.run" in out  # span feed → histograms

    def test_query_files_and_params(self, tmp_path, capsys):
        template = tmp_path / "t.oql"
        template.write_text("select r.A from R r where r.B = $b\n")
        code = main(
            [
                "metrics",
                "--workload",
                "rs",
                "--query",
                str(template),
                "--param",
                "b=3",
                "--repeat",
                "1",
            ]
        )
        assert code == 0
        assert "semcache: lookups=1" in capsys.readouterr().out
