"""Unit tests for the congruence closure engine."""

from repro.chase.congruence import (
    CongruenceClosure,
    build_congruence,
    conditions_imply,
)
from repro.query.parser import parse_path, parse_query
from repro.query.paths import Attr, Const, Dom, Lookup, SName, Var


def p(text, scope=None):
    return parse_path(text, scope=scope or set("defgkmopqrstuvxyz"))


class TestBasics:
    def test_reflexive(self):
        cc = CongruenceClosure()
        assert cc.equal(Var("x"), Var("x"))

    def test_merge_symmetric_transitive(self):
        cc = CongruenceClosure()
        cc.merge(Var("x"), Var("y"))
        cc.merge(Var("y"), Var("z"))
        assert cc.equal(Var("z"), Var("x"))

    def test_members(self):
        cc = CongruenceClosure()
        cc.merge(Var("x"), Var("y"))
        assert set(cc.members(Var("x"))) == {Var("x"), Var("y")}


class TestCongruenceRules:
    def test_attr_congruence(self):
        cc = CongruenceClosure()
        cc.add(p("x.A"))
        cc.add(p("y.A"))
        cc.merge(Var("x"), Var("y"))
        assert cc.equal(p("x.A"), p("y.A"))

    def test_attr_congruence_on_late_add(self):
        cc = CongruenceClosure()
        cc.merge(Var("x"), Var("y"))
        cc.add(p("x.A"))
        # y.A added after the merge must land in the same class
        assert cc.equal(p("y.A"), p("x.A"))

    def test_dom_congruence(self):
        cc = CongruenceClosure()
        cc.merge(Var("m"), SName("M"))
        assert cc.equal(Dom(Var("m")), Dom(SName("M")))

    def test_lookup_congruence_needs_both(self):
        cc = CongruenceClosure()
        cc.add(p("M[x]", scope={"x"}))
        cc.add(p("M[y]", scope={"y"}))
        assert not cc.equal(p("M[x]", {"x"}), p("M[y]", {"y"}))
        cc.merge(Var("x"), Var("y"))
        assert cc.equal(p("M[x]", {"x"}), p("M[y]", {"y"}))

    def test_nested_congruence_propagates(self):
        cc = CongruenceClosure()
        cc.add(p("x.A.B"))
        cc.add(p("y.A.B"))
        cc.merge(Var("x"), Var("y"))
        assert cc.equal(p("x.A.B"), p("y.A.B"))

    def test_record_equality_propagates_to_attrs(self):
        # I[i] = p implies I[i].Budg = p.Budg (used by PI constraints)
        cc = CongruenceClosure()
        cc.add(p("I[i].Budg"))
        cc.add(p("p.Budg"))
        cc.merge(p("I[i]"), Var("p"))
        assert cc.equal(p("I[i].Budg"), p("p.Budg"))


class TestConstants:
    def test_distinct_constants_inconsistent(self):
        cc = CongruenceClosure()
        cc.merge(Const(1), Var("x"))
        assert not cc.inconsistent
        cc.merge(Var("x"), Const(2))
        assert cc.inconsistent

    def test_same_constant_fine(self):
        cc = CongruenceClosure()
        cc.merge(Const("a"), Var("x"))
        cc.merge(Var("x"), Const("a"))
        assert not cc.inconsistent

    def test_constant_of(self):
        cc = CongruenceClosure()
        cc.merge(Var("x"), Const(7))
        assert cc.constant_of(Var("x")) == Const(7)
        assert cc.constant_of(Var("unrelated")) is None


class TestQueryCongruence:
    def test_build_congruence_applies_conditions(self):
        query = parse_query(
            "select struct(A = r.A) from R r, S s where r.B = s.B"
        )
        cc = build_congruence(query)
        assert cc.equal(p("r.B"), p("s.B"))

    def test_conditions_imply(self):
        query = parse_query(
            "select struct(A = r.A) from R r, S s, T t "
            "where r.B = s.B and s.B = t.B"
        )
        assert conditions_imply(query, p("r.B"), p("t.B"))
        assert not conditions_imply(query, p("r.A", {"r"}), p("t.B"))


class TestEquivalentAvoiding:
    def test_direct_member(self):
        cc = CongruenceClosure()
        cc.merge(Var("x"), p("s.B"))
        result = cc.equivalent_avoiding(Var("x"), frozenset({"x"}))
        assert result == p("s.B")

    def test_rebuild_composite(self):
        # x = y known; need x.A without x: rebuilds y.A
        cc = CongruenceClosure()
        cc.merge(Var("x"), Var("y"))
        cc.add(p("x.A"))
        result = cc.equivalent_avoiding(p("x.A"), frozenset({"x"}))
        assert result == p("y.A")

    def test_unavoidable_returns_none(self):
        cc = CongruenceClosure()
        cc.add(p("x.A"))
        assert cc.equivalent_avoiding(p("x.A"), frozenset({"x"})) is None

    def test_already_free(self):
        cc = CongruenceClosure()
        term = p("s.B")
        assert cc.equivalent_avoiding(term, frozenset({"x"})) is term

    def test_lookup_key_rewrite(self):
        # k = "CitiBank" known: SI[k] rewrites to SI["CitiBank"]
        cc = CongruenceClosure()
        cc.merge(Var("k"), Const("CitiBank"))
        cc.add(Lookup(SName("SI"), Var("k")))
        result = cc.equivalent_avoiding(
            Lookup(SName("SI"), Var("k")), frozenset({"k"})
        )
        assert result == Lookup(SName("SI"), Const("CitiBank"))


class TestClasses:
    def test_classes_partition_terms(self):
        cc = CongruenceClosure()
        cc.merge(Var("x"), Var("y"))
        cc.add(Var("z"))
        classes = cc.classes()
        assert sorted(len(c) for c in classes) == [1, 2]
