"""Unit tests for containment, equivalence and implication."""

from repro.chase.containment import (
    implies,
    is_contained_in,
    is_equivalent,
    is_trivial,
)
from repro.query.parser import parse_constraint, parse_query


def q(text):
    return parse_query(text)


class TestClassicalContainment:
    def test_extra_binding_is_more_restrictive(self):
        q1 = q("select struct(A = r.A) from R r, S s where r.B = s.B")
        q2 = q("select struct(A = r.A) from R r")
        assert is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_selection_containment(self):
        q1 = q("select struct(A = r.A) from R r where r.B = 5")
        q2 = q("select struct(A = r.A) from R r")
        assert is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_different_constants_incomparable(self):
        q1 = q("select struct(A = r.A) from R r where r.B = 5")
        q2 = q("select struct(A = r.A) from R r where r.B = 6")
        assert not is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_chandra_merlin_folding(self):
        # the redundant self-join is contained both ways
        q1 = q(
            "select struct(A = p.A) from R p, R q where p.B = q.B"
        )
        q2 = q("select struct(A = p.A) from R p")
        # q1 ⊑ q2 always; q2 ⊑ q1 by folding q onto p
        assert is_contained_in(q1, q2)
        assert is_contained_in(q2, q1)
        assert is_equivalent(q1, q2)

    def test_output_must_match(self):
        q1 = q("select struct(A = r.A) from R r")
        q2 = q("select struct(A = r.B) from R r")
        assert not is_contained_in(q1, q2)

    def test_inconsistent_query_contained_in_everything(self):
        q1 = q('select struct(A = r.A) from R r where r.B = 1 and r.B = 2')
        q2 = q("select struct(A = s.A) from S s")
        assert is_contained_in(q1, q2)


class TestContainmentUnderConstraints:
    def test_view_rewriting_equivalence(self):
        deps = [
            parse_constraint(
                "forall (r in R, s in S) where r.B = s.B -> exists (v in V) v.A = r.A and v.C = s.C",
                "cV",
            ),
            parse_constraint(
                "forall (v in V) -> exists (r in R, s in S) r.B = s.B and v.A = r.A and v.C = s.C",
                "cV'",
            ),
        ]
        join = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        view_scan = q("select struct(A = v.A, C = v.C) from V v")
        assert is_equivalent(join, view_scan, deps)
        assert not is_equivalent(join, view_scan, [])  # needs the constraints

    def test_ric_join_elimination(self):
        deps = [
            parse_constraint(
                "forall (p in Proj) -> exists (d in depts) p.PDept = d.DName",
                "RIC",
            ),
        ]
        with_join = q(
            "select struct(N = p.PName) from Proj p, depts d where p.PDept = d.DName"
        )
        without = q("select struct(N = p.PName) from Proj p")
        assert is_equivalent(with_join, without, deps)
        assert not is_contained_in(without, with_join, [])

    def test_dependent_binding_containment(self):
        q1 = q("select struct(X = s) from depts d, d.DProjs s")
        q2 = q("select struct(X = t) from depts e, e.DProjs t")
        assert is_equivalent(q1, q2)


class TestImplication:
    def test_transitive_key_implication(self):
        key = parse_constraint(
            "forall (x in R, y in R) where x.A = y.A -> x = y", "key"
        )
        derived = parse_constraint(
            "forall (x in R, y in R) where x.A = y.A -> x.B = y.B", "weaker"
        )
        assert implies(derived, [key])
        assert not implies(key, [derived])

    def test_view_constraint_implies_inclusion(self):
        cv = parse_constraint(
            "forall (r in R, s in S) where r.B = s.B -> exists (v in V) v.A = r.A",
            "cV",
        )
        # the section-4 inclusion V(A) ⊇ ... instance: joining pairs appear in V
        weaker = parse_constraint(
            "forall (r in R, s in S) where r.B = s.B -> exists (v in V) true",
            "nonempty",
        )
        assert implies(weaker, [cv])

    def test_trivial_constraints(self):
        triv = parse_constraint(
            "forall (p in R, q in R) where p.B = q.A "
            "-> exists (r in R) p.B = q.A and r = q",
            "triv",
        )
        assert is_trivial(triv)
        nontriv = parse_constraint(
            "forall (p in R) -> exists (q in S) p.A = q.A", "nontriv"
        )
        assert not is_trivial(nontriv)

    def test_section3_trivial_constraint(self):
        """The paper's displayed trivial constraint justifying minimization."""

        triv = parse_constraint(
            "forall (p in R, q in R) where p.B = q.A "
            "-> exists (r in R) p.B = q.A and q.B = r.B",
            "c",
        )
        assert is_trivial(triv)
