"""Unit tests for the cost model, statistics and join reordering."""

import pytest

from repro.model.instance import Instance
from repro.model.values import DictValue, Row
from repro.optimizer.cost import (
    CostModel,
    estimate_cost,
    estimated_output_cardinality,
)
from repro.optimizer.reorder import reorder_bindings
from repro.optimizer.statistics import Statistics
from repro.query.parser import parse_query


def q(text):
    return parse_query(text)


@pytest.fixture
def stats():
    s = Statistics()
    s.set_card("Proj", 1000).set_card("SI", 50).set_card("Dept", 20).set_card("JI", 1000)
    s.entry_cardinality["SI"] = 20.0
    s.set_ndv("Proj", "CustName", 50).set_ndv("Proj", "PName", 1000)
    s.fanout["Dept.DProjs"] = 50.0
    return s


class TestStatistics:
    def test_from_instance(self):
        inst = Instance(
            {
                "R": frozenset({Row(A=1, B="x"), Row(A=2, B="x")}),
                "M": DictValue({"x": frozenset({Row(A=1, B="x"), Row(A=2, B="x")})}),
            }
        )
        s = Statistics.from_instance(inst)
        assert s.card("R") == 2
        assert s.card("M") == 1
        assert s.entry_card("M") == 2
        assert s.distinct("R", "A") == 2
        assert s.distinct("R", "B") == 1

    def test_defaults(self):
        s = Statistics()
        assert s.card("unknown") == s.default_cardinality
        assert s.distinct("unknown", "A") == s.default_ndv

    def test_fanout_from_class_dict(self):
        from repro.model.values import Oid

        oid = Oid("D", 0)
        inst = Instance(
            {"D": DictValue({oid: Row(DName="a", DProjs=frozenset({"x", "y"}))})}
        )
        inst.register_class("D", "D")
        s = Statistics.from_instance(inst)
        assert s.attr_fanout("D", "DProjs") == 2.0


class TestCostModel:
    def test_selective_index_beats_scan(self, stats):
        scan = q('select struct(PN = p.PName) from Proj p where p.CustName = "C"')
        index = q('select struct(PN = t.PName) from SI{"C"} t')
        assert estimate_cost(index, stats) < estimate_cost(scan, stats)

    def test_guarded_index_beats_scan(self, stats):
        scan = q('select struct(PN = p.PName) from Proj p where p.CustName = "C"')
        guarded = q(
            'select struct(PN = t.PName) from dom(SI) k, SI[k] t where k = "C"'
        )
        assert estimate_cost(guarded, stats) < estimate_cost(scan, stats)

    def test_selectivity_of_const_predicate(self, stats):
        all_rows = q("select struct(PN = p.PName) from Proj p")
        filtered = q('select struct(PN = p.PName) from Proj p where p.CustName = "C"')
        assert estimated_output_cardinality(filtered, stats) < (
            estimated_output_cardinality(all_rows, stats)
        )

    def test_probe_cost_charged(self, stats):
        no_probe = q("select struct(PN = j.PN) from JI j")
        with_probe = q("select struct(PB = I[j.PN].Budg) from JI j")
        assert estimate_cost(with_probe, stats) > estimate_cost(no_probe, stats)

    def test_contradictory_constants_cost_zero_output(self, stats):
        query = q('select struct(PN = p.PName) from Proj p where "a" = "b"')
        assert estimated_output_cardinality(query, stats) == 0.0

    def test_cost_model_tunable(self, stats):
        query = q("select struct(PB = I[j.PN].Budg) from JI j")
        cheap_probes = CostModel(probe_cost=0.0)
        pricey_probes = CostModel(probe_cost=100.0)
        assert estimate_cost(query, stats, cheap_probes) < estimate_cost(
            query, stats, pricey_probes
        )


class TestReorder:
    def test_selective_binding_moved_first(self, stats):
        # scanning SI's dom (50) before Proj (1000) is better
        query = q(
            "select struct(PN = p.PName) from Proj p, dom(SI) k "
            'where k = "C" and k = p.CustName'
        )
        reordered = reorder_bindings(query, stats)
        assert reordered.binding_vars()[0] == "k"

    def test_dependencies_respected(self, stats):
        query = q(
            "select struct(PN = s) from depts d, d.DProjs s, Proj p where s = p.PName"
        )
        reordered = reorder_bindings(query, stats)
        order = reordered.binding_vars()
        assert order.index("d") < order.index("s")

    def test_never_worse(self, stats):
        query = q(
            'select struct(PN = p.PName) from Proj p, JI j where j.PN = p.PName'
        )
        reordered = reorder_bindings(query, stats)
        assert estimate_cost(reordered, stats) <= estimate_cost(query, stats)

    def test_equivalent_results(self, stats):
        inst = Instance(
            {
                "R": frozenset({Row(A=1, B=2)}),
                "S": frozenset({Row(B=2, C=3), Row(B=9, C=4)}),
            }
        )
        from repro.query.evaluator import evaluate

        query = q("select struct(A = r.A, C = s.C) from S s, R r where r.B = s.B")
        reordered = reorder_bindings(query, Statistics.from_instance(inst))
        assert evaluate(query, inst) == evaluate(reordered, inst)
