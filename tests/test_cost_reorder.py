"""Unit tests for the cost model, statistics and join reordering."""

import pytest

from repro.model.instance import Instance
from repro.model.values import DictValue, Row
from repro.optimizer.cost import (
    CostModel,
    estimate_cost,
    estimated_output_cardinality,
)
from repro.optimizer.reorder import reorder_bindings
from repro.optimizer.statistics import Statistics
from repro.query.parser import parse_query


def q(text):
    return parse_query(text)


@pytest.fixture
def stats():
    s = Statistics()
    s.set_card("Proj", 1000).set_card("SI", 50).set_card("Dept", 20).set_card("JI", 1000)
    s.entry_cardinality["SI"] = 20.0
    s.set_ndv("Proj", "CustName", 50).set_ndv("Proj", "PName", 1000)
    s.fanout["Dept.DProjs"] = 50.0
    return s


class TestStatistics:
    def test_from_instance(self):
        inst = Instance(
            {
                "R": frozenset({Row(A=1, B="x"), Row(A=2, B="x")}),
                "M": DictValue({"x": frozenset({Row(A=1, B="x"), Row(A=2, B="x")})}),
            }
        )
        s = Statistics.from_instance(inst)
        assert s.card("R") == 2
        assert s.card("M") == 1
        assert s.entry_card("M") == 2
        assert s.distinct("R", "A") == 2
        assert s.distinct("R", "B") == 1

    def test_defaults(self):
        s = Statistics()
        assert s.card("unknown") == s.default_cardinality
        assert s.distinct("unknown", "A") == s.default_ndv

    def test_fanout_from_class_dict(self):
        from repro.model.values import Oid

        oid = Oid("D", 0)
        inst = Instance(
            {"D": DictValue({oid: Row(DName="a", DProjs=frozenset({"x", "y"}))})}
        )
        inst.register_class("D", "D")
        s = Statistics.from_instance(inst)
        assert s.attr_fanout("D", "DProjs") == 2.0

    def test_copy_is_independent(self):
        s = Statistics()
        s.set_card("R", 10).set_ndv("R", "A", 5)
        clone = s.copy()
        clone.set_card("R", 99).set_ndv("R", "A", 1)
        clone.entry_cardinality["M"] = 3.0
        clone.fanout["R.S"] = 2.0
        assert s.card("R") == 10
        assert s.distinct("R", "A") == 5
        assert "M" not in s.entry_cardinality and "R.S" not in s.fanout

    def test_sampled_scan_caps_work_and_keeps_cardinality_exact(self):
        rows = frozenset(Row(A=i, B=i % 7) for i in range(500))
        inst = Instance({"R": rows})
        s = Statistics.from_instance(inst, sample=50)
        # cardinality needs no scan: stays exact
        assert s.card("R") == 500
        # NDV is a scaled estimate, never above the cardinality
        assert 0 < s.distinct("R", "A") <= 500
        assert 0 < s.distinct("R", "B") <= 500
        # a unique attribute extrapolates to (exactly) the cardinality:
        # 50 distinct values in 50 sampled rows, scaled by 500/50
        assert s.distinct("R", "A") == 500

    def test_sampled_matches_exact_when_sample_covers_extent(self):
        rows = frozenset(Row(A=i, B=i % 3) for i in range(20))
        inst = Instance({"R": rows})
        exact = Statistics.from_instance(inst)
        sampled = Statistics.from_instance(inst, sample=1000)
        assert sampled.cardinality == exact.cardinality
        assert sampled.ndv == exact.ndv
        assert sampled.fanout == exact.fanout

    def test_sampled_mixed_dict_scales_ndv_by_row_population(self):
        # 4 set entries then 4 row entries (dicts preserve insertion
        # order): sampling the first 4 sees 2 of each, so the row
        # population estimate is 8 * 2/4 = 4 — NDVs extrapolate to the
        # true row count, not the whole dict size
        data = {}
        for i in range(2):
            data[f"s{i}"] = frozenset({i})
        for i in range(2):
            data[f"r{i}"] = Row(A=i)
        for i in range(2, 4):
            data[f"s{i}"] = frozenset({i})
        for i in range(2, 4):
            data[f"r{i}"] = Row(A=i)
        inst = Instance({"M": DictValue(data)})
        s = Statistics.from_instance(inst, sample=4)
        assert s.distinct("M", "A") == 4.0  # not inflated to 8

    def test_sampled_dict_entries(self):
        value = DictValue(
            {k: frozenset(range(k + 1)) for k in range(100)}
        )
        inst = Instance({"M": value})
        s = Statistics.from_instance(inst, sample=10)
        assert s.card("M") == 100
        # entry size is a sample mean: positive and bounded by the maximum
        assert 0 < s.entry_card("M") <= 100


class TestCostModel:
    def test_selective_index_beats_scan(self, stats):
        scan = q('select struct(PN = p.PName) from Proj p where p.CustName = "C"')
        index = q('select struct(PN = t.PName) from SI{"C"} t')
        assert estimate_cost(index, stats) < estimate_cost(scan, stats)

    def test_guarded_index_beats_scan(self, stats):
        scan = q('select struct(PN = p.PName) from Proj p where p.CustName = "C"')
        guarded = q(
            'select struct(PN = t.PName) from dom(SI) k, SI[k] t where k = "C"'
        )
        assert estimate_cost(guarded, stats) < estimate_cost(scan, stats)

    def test_selectivity_of_const_predicate(self, stats):
        all_rows = q("select struct(PN = p.PName) from Proj p")
        filtered = q('select struct(PN = p.PName) from Proj p where p.CustName = "C"')
        assert estimated_output_cardinality(filtered, stats) < (
            estimated_output_cardinality(all_rows, stats)
        )

    def test_probe_cost_charged(self, stats):
        no_probe = q("select struct(PN = j.PN) from JI j")
        with_probe = q("select struct(PB = I[j.PN].Budg) from JI j")
        assert estimate_cost(with_probe, stats) > estimate_cost(no_probe, stats)

    def test_contradictory_constants_cost_zero_output(self, stats):
        query = q('select struct(PN = p.PName) from Proj p where "a" = "b"')
        assert estimated_output_cardinality(query, stats) == 0.0

    def test_cost_model_tunable(self, stats):
        query = q("select struct(PB = I[j.PN].Budg) from JI j")
        cheap_probes = CostModel(probe_cost=0.0)
        pricey_probes = CostModel(probe_cost=100.0)
        assert estimate_cost(query, stats, cheap_probes) < estimate_cost(
            query, stats, pricey_probes
        )


class TestReorder:
    def test_selective_binding_moved_first(self, stats):
        # scanning SI's dom (50) before Proj (1000) is better
        query = q(
            "select struct(PN = p.PName) from Proj p, dom(SI) k "
            'where k = "C" and k = p.CustName'
        )
        reordered = reorder_bindings(query, stats)
        assert reordered.binding_vars()[0] == "k"

    def test_dependencies_respected(self, stats):
        query = q(
            "select struct(PN = s) from depts d, d.DProjs s, Proj p where s = p.PName"
        )
        reordered = reorder_bindings(query, stats)
        order = reordered.binding_vars()
        assert order.index("d") < order.index("s")

    def test_never_worse(self, stats):
        query = q(
            'select struct(PN = p.PName) from Proj p, JI j where j.PN = p.PName'
        )
        reordered = reorder_bindings(query, stats)
        assert estimate_cost(reordered, stats) <= estimate_cost(query, stats)

    def test_equivalent_results(self, stats):
        inst = Instance(
            {
                "R": frozenset({Row(A=1, B=2)}),
                "S": frozenset({Row(B=2, C=3), Row(B=9, C=4)}),
            }
        )
        from repro.query.evaluator import evaluate

        query = q("select struct(A = r.A, C = s.C) from S s, R r where r.B = s.B")
        reordered = reorder_bindings(query, Statistics.from_instance(inst))
        assert evaluate(query, inst) == evaluate(reordered, inst)
