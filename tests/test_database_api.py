"""Unit tests for the :class:`repro.Database` façade.

Covers: workload constructors, the frozen :class:`OptimizeContext` and its
fingerprint, the cross-request plan cache (hit/miss/eviction/invalidation
counters, strategy keying), prepared queries skipping chase/backchase on
repeat runs, the ``Database.explain`` ≡ ``session.run().plan_text`` parity
regression (the hybrid ``[cached]`` overlay fix), session wiring, and the
deprecation shims.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import (
    CacheConfig,
    Database,
    Instance,
    OptimizeContext,
    Optimizer,
    ReproDeprecationWarning,
    ReproError,
    Row,
    Statistics,
    evaluate,
    execute,
    parse_constraint,
    parse_query,
)
from repro.api import build_workload
from repro.api.plancache import PlanCache
from repro.errors import OptimizationError
from repro.exec.engine import explain


def rs_database(**kwargs) -> Database:
    return Database.from_workload(
        "rs", n_r=60, n_s=60, b_values=30, seed=5, **kwargs
    )


class TestFromWorkload:
    @pytest.mark.parametrize("name", ["rs", "rabc", "projdept", "oo_asr"])
    def test_builds_and_answers_the_canonical_query(self, name):
        db = Database.from_workload(name)
        result = db.execute(db.workload.query)
        assert result.results == evaluate(db.workload.query, db.instance)
        db.close()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError, match="unknown workload"):
            Database.from_workload("nope")
        with pytest.raises(ReproError, match="unknown workload"):
            build_workload("nope")

    def test_builder_kwargs_pass_through(self):
        db = Database.from_workload("rs", n_r=10, n_s=10, b_values=5, seed=1)
        assert len(db.instance["R"]) == 10
        assert db.physical_names == db.workload.physical_names
        assert tuple(db.constraints) == tuple(db.workload.constraints)
        assert db.statistics is db.workload.statistics


class TestOptimizeContext:
    def test_frozen(self):
        ctx = OptimizeContext()
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.strategy = "full"

    def test_rejects_unknown_strategy(self):
        with pytest.raises(OptimizationError, match="unknown strategy"):
            OptimizeContext(strategy="greedy")

    def test_override_appends_and_shares_constraints(self):
        dep = parse_constraint(
            "forall (r in R) -> exists (s in S) r.B = s.B", "ric"
        )
        extra = parse_constraint(
            "forall (s in S) -> exists (r in R) s.B = r.B", "cir"
        )
        ctx = OptimizeContext(constraints=(dep,))
        over = ctx.override(extra_constraints=(extra,))
        assert over.constraints == (dep, extra)
        assert over.constraints[0] is dep  # shared, not re-derived
        assert ctx.constraints == (dep,)  # original untouched

    def test_override_keeps_vs_clears_physical_filter(self):
        ctx = OptimizeContext(physical_names=frozenset({"R"}))
        assert ctx.override().physical_names == frozenset({"R"})
        assert ctx.override(physical_names=None).physical_names is None
        assert ctx.override(
            physical_names=frozenset({"Z"})
        ).physical_names == frozenset({"Z"})

    def test_fingerprint_is_stable_and_design_sensitive(self):
        dep = parse_constraint(
            "forall (r in R) -> exists (s in S) r.B = s.B", "ric"
        )
        a = OptimizeContext(constraints=(dep,))
        b = OptimizeContext(constraints=(dep,))
        assert a.fingerprint() == a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != a.override(strategy="full").fingerprint()
        assert (
            a.fingerprint()
            != a.override(physical_names=frozenset({"R"})).fingerprint()
        )
        assert a.fingerprint() != OptimizeContext().fingerprint()

    def test_fingerprint_ignores_statistics(self):
        """Statistics staleness is handled by invalidation, not key churn."""

        dep = parse_constraint(
            "forall (r in R) -> exists (s in S) r.B = s.B", "ric"
        )
        a = OptimizeContext(constraints=(dep,))
        refreshed = a.override(statistics=Statistics().set_card("R", 7))
        assert a.fingerprint() == refreshed.fingerprint()

    def test_optimizer_roundtrip(self):
        ctx = OptimizeContext(strategy="full", max_chase_steps=77)
        opt = ctx.optimizer()
        assert opt.strategy == "full"
        assert opt.max_chase_steps == 77
        assert opt.context is ctx

    def test_backchase_and_exec_consume_contexts(self):
        from repro import minimal_subqueries

        dep = parse_constraint(
            "forall (r in R) -> exists (s in S) r.B = s.B", "ric"
        )
        ctx = OptimizeContext(constraints=(dep,))
        q = parse_query(
            "select struct(A = r.A) from R r, S s where r.B = s.B"
        )
        # the context stands in for the deps argument (and, for the
        # pruned search, the statistics/cost-model defaults)
        for strategy in ("full", "pruned"):
            with_ctx = minimal_subqueries(q, context=ctx, strategy=strategy)
            classic = minimal_subqueries(q, [dep], strategy=strategy)
            assert [f.canonical_key() for f in with_ctx] == [
                f.canonical_key() for f in classic
            ]
        with pytest.raises(ReproError, match="constraint set"):
            minimal_subqueries(q)

        # execute() takes its execution flags from the context
        instance = Instance({"R": frozenset({Row(A=1, B=2)})})
        scan = parse_query("select r.A from R r")
        hashed = execute(
            scan, instance, context=OptimizeContext(use_hash_joins=True)
        )
        assert hashed.results == frozenset({1})


class TestPlanCache:
    def test_miss_then_hits_return_the_same_result(self):
        db = rs_database()
        q = db.workload.query
        first = db.optimize(q)
        info = db.plan_cache_info()
        assert (info.misses, info.hits) == (1, 0)
        assert db.optimize(q) is first  # a hit: no chase/backchase re-run
        assert db.plan_cache_info().hits == 1

    def test_strategy_override_is_keyed_separately(self):
        db = rs_database()
        q = db.workload.query
        pruned = db.optimize(q)
        full = db.optimize(q, strategy="full")
        assert db.plan_cache_info().misses == 2
        assert full.strategy == "full" and pruned.strategy == "pruned"
        assert full.best.cost == pruned.best.cost
        assert db.optimize(q, strategy="full") is full

    def test_bypass_moves_no_counters(self):
        db = rs_database()
        db.optimize(db.workload.query, use_plan_cache=False)
        info = db.plan_cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_lru_eviction(self):
        db = rs_database(cache_config=CacheConfig(plan_cache_size=1))
        q1 = parse_query("select struct(A = r.A) from R r")
        q2 = parse_query("select struct(C = s.C) from S s")
        db.optimize(q1)
        db.optimize(q2)  # evicts q1
        info = db.plan_cache_info()
        assert (info.size, info.evictions) == (1, 1)
        db.optimize(q1)  # re-optimized: a miss, not a hit
        assert db.plan_cache_info().misses == 3

    def test_disabled_plan_cache(self):
        db = rs_database(cache_config=CacheConfig(plan_cache_size=0))
        db.optimize(db.workload.query)
        info = db.plan_cache_info()
        assert (info.hits, info.misses, info.size, info.max_size) == (0, 0, 0, 0)

    def test_mutation_invalidates_only_dependents(self):
        db = rs_database()
        join = db.workload.query  # reads R, S (and V/IR/IS plans)
        s_only = parse_query("select struct(C = s.C) from S s where s.C = 3")
        db.optimize(join)
        db.optimize(s_only)
        assert db.plan_cache_info().size == 2
        db.instance["R"] = db.instance["R"]  # touches R: join entry only
        info = db.plan_cache_info()
        assert info.invalidations == 1
        assert info.size == 1
        assert db.optimize(s_only)  # still a hit
        assert db.plan_cache_info().hits == 1

    def test_refresh_statistics_clears_the_cache(self):
        db = rs_database()
        db.optimize(db.workload.query)
        db.refresh_statistics()
        info = db.plan_cache_info()
        assert info.size == 0
        assert info.invalidations == 1

    def test_plancache_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            PlanCache(max_size=0)


class TestExecuteAndPrepare:
    def test_execute_equals_cold_pipeline(self):
        db = rs_database()
        q = db.workload.query
        cold_opt = Optimizer(
            list(db.constraints),
            physical_names=db.physical_names,
            statistics=db.statistics,
        )
        cold = execute(cold_opt.optimize(q).best.query, db.instance)
        got = db.execute(q)
        assert got.results == cold.results == evaluate(q, db.instance)
        assert got.plan_text == cold.plan_text

    def test_prepare_skips_chase_on_repeat_runs(self):
        db = rs_database()
        q = db.workload.query
        prepared = db.prepare(q)  # pays the single optimization
        assert db.plan_cache_info().misses == 1
        first = prepared.run()
        second = prepared.run()
        info = db.plan_cache_info()
        assert info.misses == 1  # no re-optimization happened
        assert info.hits >= 2  # every run() re-fetched the cached plan
        assert first.results == second.results == db.execute(q).results

    def test_prepared_run_with_overlays(self):
        instance = Instance({"R": frozenset(Row(A=i, B=i % 2) for i in range(6))})
        db = Database(instance=instance)
        prepared = db.prepare(parse_query("select r.A from R r where r.B = 1"))
        assert len(prepared.run()) == 3
        shadow = frozenset({Row(A=99, B=1)})
        assert prepared.run(overlays={"R": shadow}).results == frozenset({99})
        # the overlay never leaked into the base instance
        assert len(prepared.run()) == 3

    def test_prepared_run_against_substitute_instance(self):
        db = rs_database()
        q = parse_query("select struct(C = s.C) from S s where s.C = 0")
        prepared = db.prepare(q)
        other = Instance({"S": frozenset({Row(B=1, C=0)})})
        assert len(prepared.run(instance=other)) == 1

    def test_mutation_reoptimizes_prepared_plan(self):
        # A database with no derived structures: mutations cannot leave
        # the physical design stale, so logical equivalence must survive.
        instance = Instance(
            {"S": frozenset(Row(B=i % 4, C=i) for i in range(8))}
        )
        db = Database(instance=instance)
        q = parse_query("select struct(C = s.C) from S s where s.B = 3")
        prepared = db.prepare(q)
        prepared.run()
        instance["S"] = frozenset({Row(B=3, C=41), Row(B=4, C=2)})
        assert db.plan_cache_info().invalidations >= 1
        got = prepared.run()  # transparently re-optimized
        assert got.results == evaluate(q, instance)
        assert len(got.results) == 1
        assert db.plan_cache_info().misses == 2
        # auto-observed statistics refreshed from the mutated instance
        assert db.statistics.card("S") == 2.0

    def test_execute_without_instance_raises(self):
        db = Database(constraints=())
        with pytest.raises(ReproError, match="no instance"):
            db.execute(parse_query("select r.A from R r"))
        with pytest.raises(ReproError, match="no instance"):
            db.session()


class TestExplainParity:
    """Satellite regression: ``Database.explain`` must render exactly what
    would execute — including the hybrid ``[cached]`` overlay tags that
    ``exec.engine.explain`` used to drop unless callers threaded
    ``cached_names`` by hand."""

    WARM = "select struct(A = r.A, B = r.B) from R r where r.A = 4"
    PARTIAL = (
        "select struct(A = r.A, C = s.C) from R r, S s "
        "where r.B = s.B and r.A = 4"
    )

    def test_engine_explain_threads_cached_names(self):
        q = parse_query(self.WARM)
        assert "[cached]" not in explain(q)
        assert "[cached]" in explain(q, cached_names=frozenset({"R"}))

    def test_explain_matches_execute(self):
        db = rs_database()
        q = db.workload.query
        assert db.explain(q) == db.execute(q).plan_text

    def test_explain_matches_session_on_every_tier(self):
        db = rs_database()
        session = db.session()
        warm = parse_query(self.WARM)
        partial = parse_query(self.PARTIAL)

        # cold tier: nothing cached yet
        assert db.explain(warm, session=session) == session.run(warm).plan_text

        # hybrid tier: the partial query joins the cached selection with S
        text = db.explain(partial, session=session)
        ran = session.run(partial)
        assert ran.source == "hybrid"
        assert text == ran.plan_text
        assert "[cached]" in text

        # exact tier: the promoted answer executes no plan at all
        assert db.explain(partial, session=session) == ""
        exact = session.run(partial)
        assert exact.source == "exact" and exact.plan_text == ""

        # disabled sessions explain the raw cold execution
        cold_session = db.session(enabled=False)
        assert db.explain(partial, session=cold_session) == explain(partial)
        session.close()
        db.close()

    def test_explain_is_a_pure_peek(self):
        db = rs_database()
        session = db.session()
        session.run(parse_query(self.WARM))
        before = session.stats.as_dict()
        views_before = {v.name: v.hits for v in session.cache.views()}
        db.explain(parse_query(self.PARTIAL), session=session)
        assert session.stats.as_dict() == before
        assert {v.name: v.hits for v in session.cache.views()} == views_before
        session.close()


class TestSessionWiring:
    def test_session_inherits_the_database_context(self):
        db = rs_database()
        session = db.session()
        assert session.cache.statistics is db.statistics
        assert len(session.cache._optimizer.constraints) == len(db.constraints)
        assert session.hybrid is True
        session.close()

    def test_cache_config_drives_session_defaults(self):
        db = rs_database(
            cache_config=CacheConfig(hybrid=False, max_rewrite_views=2)
        )
        session = db.session()
        assert session.hybrid is False
        assert session.cache.max_rewrite_views == 2
        override = db.session(hybrid=True)
        assert override.hybrid is True
        session.close()
        override.close()

    def test_session_accepts_per_session_overrides(self):
        db = rs_database()
        # use_hash_joins must be overridable per session (regression: it
        # used to collide with the context-supplied default)
        session = db.session(use_hash_joins=True)
        assert session.use_hash_joins is True
        session.close()
        # explicit strategy/limits win over the context's
        full = db.session(strategy="full", max_backchase_nodes=99)
        assert full.cache._optimizer.strategy == "full"
        assert full.cache._optimizer.max_backchase_nodes == 99
        full.close()
        inherited = db.session()
        assert inherited.cache._optimizer.strategy == db.strategy
        inherited.close()

    def test_disabled_session_serves_cold(self):
        db = rs_database(cache_config=CacheConfig(semantic_cache=False))
        session = db.session()
        got = session.run(parse_query("select struct(A = r.A) from R r"))
        assert got.source == "cold"
        assert len(session.cache) == 0


class TestDeprecationShims:
    def test_build_repl_workload_shim_warns_and_delegates(self):
        from repro.cli import _build_repl_workload

        with pytest.warns(ReproDeprecationWarning):
            wl = _build_repl_workload("rabc")
        assert "R" in wl.instance
