"""Tests for the ODL-ish DDL parser (figure 2)."""

import pytest

from repro.errors import QuerySyntaxError, SchemaError
from repro.model.ddl import PROJDEPT_DDL, parse_ddl
from repro.model.types import INT, STRING, SetType, StructType
from repro.query.parser import parse_query
from repro.query.typing import typecheck_query


class TestRelationDecl:
    def test_fields_and_types(self):
        result = parse_ddl(
            "relation R { A: int, B: string, Tags: Set<string> }"
        )
        ty = result.schema.type_of("R")
        assert ty.elem.field("A") == INT
        assert ty.elem.field("Tags") == SetType(STRING)

    def test_primary_key_constraint(self):
        result = parse_ddl("relation R { A: int primary key (A) }")
        assert any(c.name == "R_A_key" and c.is_egd() for c in result.constraints)

    def test_foreign_key_constraint(self):
        result = parse_ddl(
            "relation R { A: int }\n"
            "relation S { A: int foreign key (A) references R.A }"
        )
        fk = next(c for c in result.constraints if c.name == "S_A_fk")
        assert fk.is_tgd()
        assert fk.schema_names() == frozenset({"R", "S"})

    def test_key_over_unknown_attr(self):
        with pytest.raises(SchemaError):
            parse_ddl("relation R { A: int primary key (Z) }")

    def test_dict_and_struct_types(self):
        result = parse_ddl(
            "relation R { M: Dict<string, Struct{X: int}> }"
        )
        ty = result.schema.type_of("R").elem.field("M")
        assert ty.key == STRING
        assert ty.value == StructType((("X", INT),))


class TestClassDecl:
    def test_paper_schema(self):
        result = parse_ddl(PROJDEPT_DDL)
        schema = result.schema
        assert "Proj" in schema and "depts" in schema
        info = schema.class_info("Dept")
        assert info.extent == "depts"
        assert info.attributes.field("DProjs") == SetType(STRING)
        names = {c.name for c in result.constraints}
        assert "Proj_PName_key" in names  # KEY2
        assert "Dept_DName_key" in names  # KEY1
        assert "Proj_PDept_fk" in names  # RIC2
        assert "Dept_DProjs_fk" in names  # RIC1
        assert "Dept_DProjs_inv1" in names and "Dept_DProjs_inv2" in names

    def test_encoding_produced(self):
        result = parse_ddl(PROJDEPT_DDL)
        encoding = result.encoding_for("Dept")
        assert encoding.extent == "depts"
        assert encoding.dict_name == "Dept"
        assert len(encoding.constraints()) >= 5

    def test_paper_query_typechecks_against_ddl_schema(self):
        result = parse_ddl(PROJDEPT_DDL)
        query = parse_query(
            "select struct(PN = s, PB = p.Budg, DN = d.DName) "
            "from depts d, d.DProjs s, Proj p "
            'where s = p.PName and p.CustName = "CitiBank"'
        )
        typecheck_query(query, result.schema, strict=True)

    def test_inverse_requires_key(self):
        bad = """
        class C (extent cs) {
            relationship Set<string> Rel
                inverse R.Back
                foreign key references R.K
        }
        """
        with pytest.raises(SchemaError):
            parse_ddl(bad)

    def test_unknown_member_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_ddl("class C (extent cs) { banana }")

    def test_missing_encoding_lookup(self):
        result = parse_ddl("relation R { A: int }")
        with pytest.raises(SchemaError):
            result.encoding_for("Nope")


class TestConstraintSemantics:
    def test_ddl_constraints_match_workload_constraints(self):
        """The DDL-generated assertions hold on a generated instance."""

        from repro.constraints.checker import check_all
        from repro.workloads.projdept import build_projdept

        wl = build_projdept(n_depts=3, projs_per_dept=2, seed=1)
        result = parse_ddl(PROJDEPT_DDL)
        assert check_all(result.constraints, wl.instance) == []

    def test_end_to_end_optimization_from_ddl(self):
        """DDL constraints + encoding drive the optimizer directly."""

        from repro.optimizer.optimizer import Optimizer
        from repro.workloads.projdept import build_projdept

        wl = build_projdept(n_depts=3, projs_per_dept=2, seed=1)
        ddl = parse_ddl(PROJDEPT_DDL)
        deps = ddl.constraints + ddl.encoding_for("Dept").constraints()
        # full enumeration: P2 need not win, it must merely be *present*
        opt = Optimizer(deps, physical_names={"Dept", "Proj"}, strategy="full")
        result = opt.optimize(wl.query)
        # P2 (scan Proj) is reachable purely from DDL constraints
        assert any(
            p.query.schema_names() == frozenset({"Proj"}) for p in result.plans
        )
