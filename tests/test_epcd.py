"""Unit tests for EPCD constraints."""

import pytest

from repro.constraints.epcd import EPCD, egd
from repro.errors import ConstraintError
from repro.query.ast import Binding, Eq
from repro.query.parser import parse_constraint
from repro.query.paths import Attr, Dom, Lookup, SName, Var


class TestClassification:
    def test_egd(self):
        dep = parse_constraint(
            "forall (x in R, y in R) where x.A = y.A -> x = y", "key"
        )
        assert dep.is_egd()
        assert not dep.is_tgd()

    def test_tgd(self):
        dep = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cv")
        assert dep.is_tgd()
        assert not dep.is_egd()

    def test_full_dependency(self):
        dep = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cv")
        assert dep.is_full()

    def test_non_full_dependency(self):
        # conclusion binding over a path mentioning an existential variable
        dep = parse_constraint(
            "forall (d in depts) -> exists (e in dom(Dept), m in Dept[e].DProjs) d = e",
            "dd",
        )
        assert not dep.is_full()

    def test_trivial_shape(self):
        dep = parse_constraint(
            "forall (x in R, y in R) where x.A = y.A -> x.A = y.A", "t"
        )
        assert dep.is_trivial_shape()


class TestValidation:
    def test_duplicate_universal_rejected(self):
        with pytest.raises(ConstraintError):
            EPCD(
                name="bad",
                premise_bindings=(
                    Binding("x", SName("R")),
                    Binding("x", SName("S")),
                ),
            )

    def test_unbound_premise_path_rejected(self):
        with pytest.raises(ConstraintError):
            EPCD(
                name="bad",
                premise_bindings=(Binding("m", Attr(Var("ghost"), "S")),),
            )

    def test_unbound_conclusion_condition_rejected(self):
        with pytest.raises(ConstraintError):
            EPCD(
                name="bad",
                premise_bindings=(Binding("x", SName("R")),),
                conclusion_conditions=(Eq(Var("x"), Var("ghost")),),
            )

    def test_conclusion_may_use_earlier_existentials(self):
        # k in dom(SI), t in SI[k] — the second source uses the first var
        dep = EPCD(
            name="ok",
            premise_bindings=(Binding("p", SName("Proj")),),
            conclusion_bindings=(
                Binding("k", Dom(SName("SI"))),
                Binding("t", Lookup(SName("SI"), Var("k"))),
            ),
        )
        assert dep.is_tgd()


class TestStructure:
    def test_vars_and_names(self):
        dep = parse_constraint(
            "forall (p in Proj) -> exists (i in dom(I)) i = p.PName and I[i] = p",
            "pi1",
        )
        assert dep.universal_vars() == ("p",)
        assert dep.existential_vars() == ("i",)
        assert dep.schema_names() == frozenset({"Proj", "I"})

    def test_premise_query(self):
        dep = parse_constraint(
            "forall (x in R, y in S) where x.B = y.B -> x.A = y.C", "e"
        )
        pq = dep.premise_query()
        assert pq.binding_vars() == ("x", "y")
        assert len(pq.conditions) == 1

    def test_rename_avoids_capture(self):
        dep = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cv")
        renamed = dep.rename("_1")
        assert renamed.universal_vars() == ("r_1",)
        assert renamed.existential_vars() == ("v_1",)
        assert "r_1.A" in str(renamed.conclusion_conditions[0])

    def test_egd_constructor(self):
        dep = egd(
            "k",
            (Binding("x", SName("R")), Binding("y", SName("R"))),
            (Eq(Attr(Var("x"), "A"), Attr(Var("y"), "A")),),
            (Eq(Var("x"), Var("y")),),
        )
        assert dep.is_egd()

    def test_str_renders(self):
        dep = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A", "cv")
        text = str(dep)
        assert "forall" in text and "exists" in text and text.startswith("cv:")
