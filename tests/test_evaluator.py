"""Unit tests for the reference interpreter."""

import pytest

from repro.errors import QueryExecutionError
from repro.model.instance import Instance
from repro.model.values import DictValue, Oid, Row
from repro.query.evaluator import count_bindings_visited, eval_path, evaluate
from repro.query.parser import parse_path, parse_query


@pytest.fixture
def instance():
    proj = frozenset(
        {
            Row(PName="P1", CustName="CitiBank", PDept="D0", Budg=100),
            Row(PName="P2", CustName="Acme", PDept="D0", Budg=200),
            Row(PName="P3", CustName="CitiBank", PDept="D1", Budg=300),
        }
    )
    d0, d1 = Oid("Dept", 0), Oid("Dept", 1)
    dept = DictValue(
        {
            d0: Row(DName="D0", DProjs=frozenset({"P1", "P2"})),
            d1: Row(DName="D1", DProjs=frozenset({"P3"})),
        }
    )
    si = DictValue(
        {
            "CitiBank": frozenset(
                {
                    Row(PName="P1", CustName="CitiBank", PDept="D0", Budg=100),
                    Row(PName="P3", CustName="CitiBank", PDept="D1", Budg=300),
                }
            ),
            "Acme": frozenset(
                {Row(PName="P2", CustName="Acme", PDept="D0", Budg=200)}
            ),
        }
    )
    inst = Instance({"Proj": proj, "Dept": dept, "SI": si, "depts": frozenset({d0, d1})})
    inst.register_class("Dept", "Dept")
    return inst


class TestPathEvaluation:
    def test_const_and_sname(self, instance):
        assert eval_path(parse_path('"x"'), {}, instance) == "x"
        assert len(eval_path(parse_path("Proj"), {}, instance)) == 3

    def test_attr_on_row(self, instance):
        row = Row(A=1)
        assert eval_path(parse_path("r.A", scope={"r"}), {"r": row}, instance) == 1

    def test_attr_on_oid_derefs(self, instance):
        oid = Oid("Dept", 0)
        result = eval_path(parse_path("d.DName", scope={"d"}), {"d": oid}, instance)
        assert result == "D0"

    def test_dom(self, instance):
        assert eval_path(parse_path("dom(SI)"), {}, instance) == frozenset(
            {"CitiBank", "Acme"}
        )

    def test_lookup_and_failure(self, instance):
        assert len(eval_path(parse_path('SI["CitiBank"]'), {}, instance)) == 2
        with pytest.raises(QueryExecutionError):
            eval_path(parse_path('SI["Nobody"]'), {}, instance)

    def test_nonfailing_lookup(self, instance):
        assert eval_path(parse_path('SI{"Nobody"}'), {}, instance) == frozenset()

    def test_unbound_variable(self, instance):
        with pytest.raises(QueryExecutionError):
            eval_path(parse_path("x", scope={"x"}), {}, instance)


class TestQueryEvaluation:
    def test_projection(self, instance):
        result = evaluate(parse_query("select p.PName from Proj p"), instance)
        assert result == frozenset({"P1", "P2", "P3"})

    def test_selection(self, instance):
        result = evaluate(
            parse_query(
                'select p.PName from Proj p where p.CustName = "CitiBank"'
            ),
            instance,
        )
        assert result == frozenset({"P1", "P3"})

    def test_dependent_join(self, instance):
        result = evaluate(
            parse_query("select struct(D = d.DName, P = s) from depts d, d.DProjs s"),
            instance,
        )
        assert Row(D="D0", P="P1") in result
        assert len(result) == 3

    def test_paper_query(self, instance):
        result = evaluate(
            parse_query(
                "select struct(PN = s, PB = p.Budg, DN = d.DName) "
                "from depts d, d.DProjs s, Proj p "
                'where s = p.PName and p.CustName = "CitiBank"'
            ),
            instance,
        )
        assert result == frozenset(
            {Row(PN="P1", PB=100, DN="D0"), Row(PN="P3", PB=300, DN="D1")}
        )

    def test_set_semantics_dedupes(self, instance):
        result = evaluate(parse_query("select p.PDept from Proj p"), instance)
        assert result == frozenset({"D0", "D1"})

    def test_lookup_plan(self, instance):
        result = evaluate(
            parse_query('select struct(PN = t.PName) from SI{"CitiBank"} t'),
            instance,
        )
        assert result == frozenset({Row(PN="P1"), Row(PN="P3")})

    def test_empty_condition_short_circuit(self, instance):
        result = evaluate(
            parse_query('select p.PName from Proj p where "a" = "b"'), instance
        )
        assert result == frozenset()

    def test_binding_over_scalar_raises(self, instance):
        query = parse_query("select x from depts d, d.DName x")
        with pytest.raises(QueryExecutionError):
            evaluate(query, instance)

    def test_count_bindings_visited(self, instance):
        query = parse_query("select p.PName from Proj p")
        assert count_bindings_visited(query, instance) == 3

    def test_conditions_fire_early(self, instance):
        # The selective condition must prune before the second loop.
        query = parse_query(
            'select struct(PN = p.PName, D = d.DName) from Proj p, depts d '
            'where p.CustName = "Nobody"'
        )
        assert count_bindings_visited(query, instance) == 0
