"""Unit tests for the execution engine (operators, planner, engine)."""

import pytest

from repro.errors import QueryExecutionError
from repro.exec.engine import execute, explain
from repro.exec.operators import Counters, HashJoinBind, ScanBind, Singleton
from repro.exec.planner import compile_query
from repro.model.instance import Instance
from repro.model.values import DictValue, Row
from repro.query.evaluator import evaluate
from repro.query.parser import parse_path, parse_query
from repro.query.paths import Attr, SName, Var


def q(text):
    return parse_query(text)


@pytest.fixture
def instance():
    return Instance(
        {
            "R": frozenset({Row(A=1, B=10), Row(A=2, B=20), Row(A=3, B=10)}),
            "S": frozenset({Row(B=10, C="x"), Row(B=20, C="y"), Row(B=30, C="z")}),
            "IS": DictValue(
                {
                    10: frozenset({Row(B=10, C="x")}),
                    20: frozenset({Row(B=20, C="y")}),
                    30: frozenset({Row(B=30, C="z")}),
                }
            ),
        }
    )


class TestOperators:
    def test_scan_counts_tuples(self, instance):
        counters = Counters()
        op = ScanBind(Singleton(counters), "r", SName("R"), counters)
        rows = list(op.rows(instance))
        assert len(rows) == 3
        assert counters.tuples == 3

    def test_hash_join(self, instance):
        counters = Counters()
        left = ScanBind(Singleton(counters), "r", SName("R"), counters)
        join = HashJoinBind(
            left,
            "s",
            SName("S"),
            parse_path("s.B", scope={"s"}),
            parse_path("r.B", scope={"r"}),
            counters,
        )
        rows = list(join.rows(instance))
        assert len(rows) == 3  # each R row finds exactly one partner
        assert counters.hash_builds == 3
        assert counters.probes == 3

    def test_filter_counts(self, instance):
        counters = Counters()
        plan = compile_query(q("select r.A from R r where r.B = 10"), counters)
        results = frozenset(plan.results(instance))
        assert results == frozenset({1, 3})
        assert counters.filtered == 1


class TestPlanner:
    def test_pipeline_explain(self):
        text = explain(q("select struct(A = r.A) from R r, S s where r.B = s.B"))
        assert "scan R as r" in text
        assert "filter" in text

    def test_hash_join_detected(self):
        text = explain(
            q("select struct(A = r.A) from R r, S s where r.B = s.B"),
            use_hash_joins=True,
        )
        assert "hash-join S as s" in text

    def test_hash_join_not_used_for_dependent_scan(self):
        text = explain(
            q("select struct(X = m) from depts d, d.DProjs m"),
            use_hash_joins=True,
        )
        assert "hash-join" not in text

    def test_index_scan_compiles(self):
        text = explain(q('select struct(C = t.C) from IS{10} t'))
        assert "scan IS{10} as t" in text


class TestEngine:
    def test_agrees_with_reference(self, instance):
        queries = [
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
            "select r.A from R r where r.B = 10",
            "select struct(C = t.C) from dom(IS) k, IS[k] t where k = 10",
            "select struct(C = t.C) from IS{10} t",
            "select struct(C = t.C) from IS{999} t",
        ]
        for text in queries:
            query = q(text)
            assert execute(query, instance).results == evaluate(query, instance)

    def test_hash_join_agrees(self, instance):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        nested = execute(query, instance, use_hash_joins=False)
        hashed = execute(query, instance, use_hash_joins=True)
        assert nested.results == hashed.results

    def test_hash_join_fewer_tuples_scanned(self, instance):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        nested = execute(query, instance, use_hash_joins=False)
        hashed = execute(query, instance, use_hash_joins=True)
        assert hashed.counters.tuples < nested.counters.tuples

    def test_index_probe_counted(self, instance):
        query = q("select struct(C = t.C) from R r, IS{r.B} t")
        result = execute(query, instance)
        assert result.counters.probes >= 3

    def test_failing_lookup_raises(self, instance):
        query = q("select struct(C = t.C) from IS[999] t")
        with pytest.raises(QueryExecutionError):
            execute(query, instance)

    def test_execution_result_metadata(self, instance):
        result = execute(q("select r.A from R r"), instance)
        assert len(result) == 3
        assert result.elapsed_seconds >= 0
        assert "scan R" in result.plan_text
