"""Compiled execution (``repro.exec.compile``) and the executor
instrumentation fixes that shipped with it.

Three layers of coverage:

* pinned counter regressions — short-circuiting :class:`Filter` counts
  only the condition probes it actually evaluated, :class:`HashJoinBind`
  rebuilds its table on every run (no memo field), and ``execute`` with a
  caller-reused :class:`Counters` reports *per-run* counts in the
  :class:`ExecutionResult` while the caller's object accumulates;
* differential checks — for every golden workload plan (the canonical
  queries, E9's reference plans P1–P4, and each workload's optimized
  winner) the compiled function, the interpreted pipeline and the
  reference evaluator produce identical answers, including overlay
  (hybrid semantic-cache) execution and ``$param`` substitution into an
  already-compiled artifact;
* mode plumbing — ``exec_mode`` validation, the engine artifact LRU, the
  plan-cache entry artifact, EXPLAIN ANALYZE's transparent interpreted
  fallback, and the CLI flag.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.api.context import OptimizeContext
from repro.errors import (
    OptimizationError,
    ParameterBindingError,
    QueryExecutionError,
    ReproError,
)
from repro.exec.compile import (
    CompiledPlan,
    PlanCompilationError,
    compile_plan,
    generate_source,
)
from repro.exec.engine import compiled_for, execute
from repro.exec.operators import (
    Counters,
    Filter,
    HashJoinBind,
    ScanBind,
    Singleton,
)
from repro.model.instance import Instance
from repro.model.values import DictValue, Row
from repro.query.ast import Eq
from repro.query.evaluator import evaluate
from repro.query.parser import parse_path, parse_query
from repro.query.paths import Const, SName


def q(text):
    return parse_query(text)


@pytest.fixture
def instance():
    return Instance(
        {
            "R": frozenset({Row(A=1, B=10), Row(A=2, B=20), Row(A=3, B=30)}),
            "S": frozenset({Row(B=10, C="x"), Row(B=20, C="y"), Row(B=30, C="z")}),
            "D": DictValue({1: 10, 2: 20, 3: 99}),
            "IS": DictValue(
                {
                    10: frozenset({Row(B=10, C="x")}),
                    20: frozenset({Row(B=20, C="y")}),
                    30: frozenset({Row(B=30, C="z")}),
                }
            ),
        }
    )


class TestFilterShortCircuitProbes:
    """Satellite 1: ``Filter.rows`` used to bump the *total* probe count
    of all conditions per input env, even when an early condition failed
    and the rest were never evaluated."""

    def test_probes_count_only_evaluated_conditions(self, instance):
        counters = Counters()
        scan = ScanBind(Singleton(counters), "r", SName("R"), counters)
        filt = Filter(
            scan,
            [
                # 1 probe: fails for the A=3 row (D[3]=99 != r.B=30)
                Eq(parse_path("D[r.A]", scope={"r"}), parse_path("r.B", scope={"r"})),
                # 2 probes: only reached when the first condition held
                Eq(parse_path("D[r.A]", scope={"r"}), parse_path("D[r.A]", scope={"r"})),
            ],
            counters,
        )
        survivors = list(filt.rows(instance))
        assert len(survivors) == 2
        assert counters.filtered == 1
        # A=1 and A=2 evaluate both conditions (3 probes each); A=3
        # short-circuits after the first (1 probe).  The pre-fix code
        # charged 3 probes per env = 9.
        assert counters.probes == 7

    def test_all_pass_counts_every_condition(self, instance):
        counters = Counters()
        scan = ScanBind(Singleton(counters), "r", SName("R"), counters)
        filt = Filter(
            scan,
            [Eq(parse_path("D[r.A]", scope={"r"}), parse_path("D[r.A]", scope={"r"}))],
            counters,
        )
        assert len(list(filt.rows(instance))) == 3
        assert counters.probes == 6  # 2 lookups x 3 envs, nothing filtered
        assert counters.filtered == 0


class TestHashJoinRebuild:
    """Satellite 2: the dead ``_table`` memo field is gone and the build
    side is provably rebuilt on every run."""

    def _join(self, counters):
        left = ScanBind(Singleton(counters), "r", SName("R"), counters)
        return HashJoinBind(
            left,
            "s",
            SName("S"),
            parse_path("s.B", scope={"s"}),
            parse_path("r.B", scope={"r"}),
            counters,
        )

    def test_no_memo_field(self, counters=None):
        join = self._join(Counters())
        assert not hasattr(join, "_table")

    def test_rebuilds_per_run(self, instance):
        counters = Counters()
        join = self._join(counters)
        assert len(list(join.rows(instance))) == 3
        assert counters.hash_builds == 3  # one bump per S element
        assert len(list(join.rows(instance))) == 3
        assert counters.hash_builds == 6  # rebuilt, not memoized

    def test_rebuild_sees_mutation(self, instance):
        counters = Counters()
        join = self._join(counters)
        assert len(list(join.rows(instance))) == 3
        instance["S"] = frozenset({Row(B=10, C="only")})
        assert len(list(join.rows(instance))) == 1


class TestPerRunCounters:
    """Satellite 3: a caller-reused ``Counters`` accumulates, but every
    ``ExecutionResult`` reports that run alone."""

    def test_result_counters_are_per_run(self, instance):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        shared = Counters()
        first = execute(query, instance, counters=shared)
        second = execute(query, instance, counters=shared)
        assert first.counters.tuples == second.counters.tuples
        assert first.counters.filtered == second.counters.filtered
        assert second.counters is not shared
        # the caller's object accumulates both runs
        assert shared.tuples == 2 * first.counters.tuples
        assert shared.filtered == 2 * first.counters.filtered

    def test_compiled_mode_same_contract(self, instance):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        shared = Counters()
        first = execute(query, instance, counters=shared, mode="compiled")
        second = execute(query, instance, counters=shared, mode="compiled")
        assert first.counters.tuples == second.counters.tuples
        assert shared.tuples == 2 * first.counters.tuples


DIFFERENTIAL_QUERIES = [
    "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
    "select r.A from R r where r.B = 10",
    "select r.A from R r where r.B = 10 and r.A = 1",
    "select struct(A = r.A) from R r",
    "select struct(C = t.C) from dom(IS) k, IS[k] t where k = 10",
    "select struct(C = t.C) from IS{10} t",
    "select struct(C = t.C) from IS{999} t",
    "select struct(C = t.C) from R r, IS{r.B} t",
    "select struct(A = r.A, X = s.C) from R r, S s where r.B = s.B and s.C = \"y\"",
    "select struct(A = x.A, B = y.B) from R x, R y where x.A = y.A",
]


class TestCompiledDifferential:
    @pytest.mark.parametrize("text", DIFFERENTIAL_QUERIES)
    @pytest.mark.parametrize("use_hash_joins", [False, True])
    def test_matches_interpreted_and_reference(
        self, instance, text, use_hash_joins
    ):
        query = q(text)
        reference = evaluate(query, instance)
        interpreted = execute(
            query, instance, use_hash_joins=use_hash_joins, mode="interpret"
        )
        compiled = execute(
            query, instance, use_hash_joins=use_hash_joins, mode="compiled"
        )
        assert compiled.mode == "compiled"
        assert compiled.results == interpreted.results == reference

    def test_failing_lookup_error_parity(self, instance):
        query = q("select struct(C = t.C) from IS[99] t")
        with pytest.raises(QueryExecutionError, match="failing lookup"):
            execute(query, instance, mode="interpret")
        with pytest.raises(QueryExecutionError, match="failing lookup"):
            execute(query, instance, mode="compiled")

    def test_non_set_source_error_parity(self, instance):
        query = q("select struct(X = t) from D t")
        with pytest.raises(QueryExecutionError, match="not a set"):
            execute(query, instance, mode="interpret")
        with pytest.raises(QueryExecutionError, match="not a set"):
            execute(query, instance, mode="compiled")

    def test_overlay_execution_matches(self, instance):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        overlays = {"S": frozenset({Row(B=10, C="cached"), Row(B=20, C="cached2")})}
        interpreted = execute(query, instance, overlays=overlays)
        compiled = execute(query, instance, overlays=overlays, mode="compiled")
        assert compiled.results == interpreted.results
        assert evaluate(query, instance.overlay(dict(overlays))) == compiled.results
        # the base instance stays authoritative for non-overlaid names
        assert any(row["C"] == "cached" for row in compiled.results)

    def test_mutation_invalidates_columnar_cache(self, instance):
        query = q("select r.A from R r where r.B = 10")
        plan = compile_plan(query)
        assert plan.run(instance) == frozenset({1})
        instance["R"] = frozenset({Row(A=7, B=10), Row(A=8, B=20)})
        assert plan.run(instance) == frozenset({7})


WORKLOADS = ["rs", "rabc", "projdept", "oo_asr"]


class TestGoldenWorkloadPlans:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_canonical_and_winner_agree(self, name):
        db = Database.from_workload(name)
        wl = db.workload
        reference = evaluate(wl.query, wl.instance)
        for plan_query in (wl.query, db.optimize(wl.query).best.query):
            interpreted = execute(plan_query, wl.instance, mode="interpret")
            compiled = execute(plan_query, wl.instance, mode="compiled")
            assert compiled.mode == "compiled"
            assert compiled.results == interpreted.results == reference
        db.close()

    def test_projdept_reference_plans(self):
        db = Database.from_workload("projdept")
        wl = db.workload
        reference = evaluate(wl.query, wl.instance)
        for name, plan in wl.reference_plans.items():
            interpreted = execute(plan, wl.instance, mode="interpret")
            compiled = execute(plan, wl.instance, mode="compiled")
            assert compiled.results == interpreted.results == reference, name
        db.close()


class TestCompiledTemplates:
    def test_params_are_runtime_arguments(self, instance):
        template = q("select struct(A = r.A) from R r where r.B = $b")
        plan = compile_plan(template)
        assert plan.param_names == ("b",)
        assert plan.run(instance, params={"b": 10}) == frozenset({Row(A=1)})
        assert plan.run(instance, params={"b": 20}) == frozenset({Row(A=2)})
        assert plan.run(instance, params={"b": 999}) == frozenset()

    def test_missing_param_raises(self, instance):
        plan = compile_plan(q("select struct(A = r.A) from R r where r.B = $b"))
        with pytest.raises(ParameterBindingError, match=r"\$b"):
            plan.run(instance)

    def test_const_values_unwrapped(self, instance):
        plan = compile_plan(q("select struct(A = r.A) from R r where r.B = $b"))
        assert plan.run(instance, params={"b": Const(10)}) == frozenset({Row(A=1)})

    def test_prepared_template_uses_entry_artifact(self):
        db = Database.from_workload("rs", exec_mode="compiled")
        db_ref = Database.from_workload("rs")
        template = q(
            "select struct(A = r.A, C = s.C) from R r, S s "
            "where r.B = s.B and s.C = $c"
        )
        prepared = db.prepare(template)
        reference = db_ref.prepare(template)
        for c in (3, 4, 5, 999):
            got = prepared.run(c=c)
            want = reference.run(c=c)
            assert got.results == want.results, c
            bound = template.bind_params({"c": Const(c)})
            assert got.results == evaluate(bound, db.instance), c
        # the artifact was compiled once and cached on the entry
        entry = db._plan_cache.get(
            (template.template_key(), db.context.fingerprint())
        )
        assert isinstance(entry.compiled, CompiledPlan)
        db.close()
        db_ref.close()

    def test_database_execute_compiled_matches_interpreted(self):
        compiled_db = Database.from_workload("rs", exec_mode="compiled")
        interp_db = Database.from_workload("rs")
        query = compiled_db.workload.query
        got = compiled_db.execute(query)
        want = interp_db.execute(query)
        assert got.results == want.results
        assert got.results == evaluate(query, compiled_db.instance)
        compiled_db.close()
        interp_db.close()


class TestModePlumbing:
    def test_context_validates_exec_mode(self):
        with pytest.raises(OptimizationError, match="unknown exec mode"):
            OptimizeContext(exec_mode="bogus")

    def test_engine_validates_mode(self, instance):
        with pytest.raises(ReproError, match="unknown exec mode"):
            execute(q("select r.A from R r"), instance, mode="bogus")

    def test_context_default_mode_flows_through(self, instance):
        query = q("select r.A from R r where r.B = 10")
        context = OptimizeContext(exec_mode="compiled")
        result = execute(query, instance, context=context)
        assert result.mode == "compiled"
        # an explicit mode= wins over the context default
        result = execute(query, instance, context=context, mode="interpret")
        assert result.mode == "interpret"

    def test_exec_mode_not_in_fingerprint(self):
        interp = OptimizeContext(exec_mode="interpret")
        compiled = OptimizeContext(exec_mode="compiled")
        assert interp.fingerprint() == compiled.fingerprint()

    def test_engine_lru_reuses_artifact(self):
        query = q("select struct(A = r.A) from R r where r.B = 2")
        first = compiled_for(query)
        second = compiled_for(query)
        assert first is second

    def test_plan_text_matches_interpreted_explain(self, instance):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        interpreted = execute(query, instance, mode="interpret")
        compiled = execute(query, instance, mode="compiled")
        assert compiled.plan_text == interpreted.plan_text

    def test_generate_source_is_valid_python(self):
        for text in DIFFERENTIAL_QUERIES:
            for use_hash_joins in (False, True):
                source = generate_source(q(text), use_hash_joins=use_hash_joins)
                compile(source, "<test>", "exec")  # must not raise

    def test_explain_analyze_under_compiled_mode(self):
        db = Database.from_workload("rs", exec_mode="compiled")
        report = db.explain(db.workload.query, analyze=True)
        rendered = report.render()
        # the interpreted instrumentation ran: per-operator actual rows
        assert "EXPLAIN ANALYZE" in rendered
        assert "rows in" in rendered
        db.close()

    def test_cli_exec_mode_flag(self, capsys):
        from repro.cli import main

        assert main(["optimize", "--workload", "rs", "--exec-mode", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "executed (compiled):" in out

    def test_cli_exec_mode_requires_workload(self, tmp_path, capsys):
        from repro.cli import main

        query = tmp_path / "q.oql"
        query.write_text("select r.A from R r where r.B = 5\n")
        assert (
            main(
                ["optimize", "--query", str(query), "--exec-mode", "compiled"]
            )
            == 1
        )
        assert "needs an instance" in capsys.readouterr().err
