"""Plan-quality feedback layer tests (``repro.obs.feedback`` /
``repro.obs.regress`` and their ``Database`` plumbing).

Covers, in order:

- the Q-error primitive and the :class:`FeedbackStore` learning rules
  (cardinality reads, selectivity-implied NDVs, the no-op guards that
  keep a confirming observation from counting as a correction);
- the **zero-cost-when-off guarantee** (the acceptance gate): a default
  Database carries no store, collects no per-level actuals, generates
  byte-level-silent compiled artifacts (three parameters, no ``_fb`` /
  ``_r0`` locals), and exposes no feedback metrics;
- the **estimate-parity pin**: the store's level replay is bit-identical
  to EXPLAIN ANALYZE's "est rows" column on every built-in workload
  plan, and the collected actuals agree between the interpreted and
  compiled engines *and* with the instrumented analyzer's row counts;
- the :class:`PlanRegressionLog` thresholds and the drift → flag →
  ``#fb:`` replan loop on a pinned-stale catalog;
- the **answer-preservation property**: under a seeded random query /
  mutation sequence, a feedback+replan Database returns exactly the cold
  per-query answers;
- the satellite wirings: slow-query log on ``PreparedQuery.run``,
  session cold-path feedback hook, deterministic statistics sampling
  defaults.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import (
    CacheConfig,
    Database,
    Instance,
    ObsConfig,
    Row,
    Statistics,
    execute,
    parse_query,
)
from repro.exec.compile import (
    PlanCompilationError,
    compile_plan,
    generate_source,
)
from repro.exec.operators import Filter, HashJoinBind, ScanBind
from repro.exec.planner import compile_query
from repro.obs.analyze import _chain, analyze_query
from repro.obs.feedback import (
    FeedbackStore,
    LevelSpec,
    QERROR_BUCKETS,
    level_specs,
    qerror,
)
from repro.obs.regress import MIN_DRIFT_SECONDS, PlanRegressionLog
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.statistics import (
    AUTO_SAMPLE_SIZE,
    AUTO_SAMPLE_THRESHOLD,
    _capped,
    default_sample,
)

JOIN_Q = "select struct(A = r.A, B = s.B) from R r, S s where r.B = s.B"

WORKLOADS = ("rs", "rabc", "projdept", "oo_asr")


def small_instance() -> Instance:
    r = frozenset(Row(A=i % 4, B=i % 3, C=i) for i in range(12))
    s = frozenset(Row(B=i % 3, C=i % 5) for i in range(9))
    t = frozenset(Row(A=i % 4, C=i % 5) for i in range(6))
    return Instance({"R": r, "S": s, "T": t})


# -- the Q-error primitive ----------------------------------------------------


class TestQerror:
    def test_perfect_estimate_is_one(self):
        assert qerror(10, 10) == 1.0

    def test_symmetric(self):
        assert qerror(5, 50) == qerror(50, 5) == 10.0

    def test_floored_at_one_row(self):
        # an empty level vs a 1-row estimate is not an infinite error
        assert qerror(0.25, 0) == 1.0
        assert qerror(8.0, 0) == 8.0


# -- FeedbackStore learning ---------------------------------------------------


class TestFeedbackLearning:
    def stats(self) -> Statistics:
        return Statistics.from_instance(small_instance())

    def test_confirming_scan_is_not_a_correction(self):
        # card(R) is 12 and the scan saw 12 rows: the no-op guard must
        # keep has_corrections() false (a spurious correction would make
        # every flagged entry eligible for a pointless replan).
        store = FeedbackStore()
        specs = (LevelSpec(label="scan R", est_rows=12.0, rel="R"),)
        store._learn(specs, (12,), self.stats())
        assert not store.has_corrections()
        assert store.corrections == 0

    def test_unconditioned_scan_reads_cardinality(self):
        store = FeedbackStore()
        specs = (LevelSpec(label="scan R", est_rows=12.0, rel="R"),)
        store._learn(specs, (500,), self.stats())
        assert store.card_overrides["R"] == 500.0
        assert store.corrections == 1

    def test_conditioned_fanout_beyond_card_raises_cardinality(self):
        # 40 survivors out of a believed 12-row relation: selectivity
        # cannot exceed 1, so the cardinality itself must be stale.
        store = FeedbackStore()
        specs = (
            LevelSpec(
                label="scan R + filter",
                est_rows=4.0,
                rel="R",
                attrs=(("R", "A"),),
                has_conds=True,
            ),
        )
        store._learn(specs, (40,), self.stats())
        assert store.card_overrides["R"] == 40.0

    def test_single_attr_condition_implies_ndv(self):
        # 6 of 12 rows survive an equality on R.A: implied NDV 2, and the
        # catalog believes ndv(R.A) = 4, so it is a correction.
        store = FeedbackStore()
        stats = self.stats()
        assert stats.distinct("R", "A") == 4
        specs = (
            LevelSpec(
                label="scan R + filter",
                est_rows=3.0,
                rel="R",
                attrs=(("R", "A"),),
                has_conds=True,
            ),
        )
        store._learn(specs, (6,), stats)
        assert store.ndv_overrides[("R", "A")] == 2.0

    def test_confirming_ndv_is_not_a_correction(self):
        # 3 of 12 survive: implied NDV 4 == believed ndv(R.A) — no-op.
        store = FeedbackStore()
        specs = (
            LevelSpec(
                label="scan R + filter",
                est_rows=3.0,
                rel="R",
                attrs=(("R", "A"),),
                has_conds=True,
            ),
        )
        store._learn(specs, (3,), self.stats())
        assert not store.has_corrections()

    def test_ambiguous_attribution_teaches_no_ndv(self):
        store = FeedbackStore()
        specs = (
            LevelSpec(
                label="scan R + filter",
                est_rows=3.0,
                rel="R",
                attrs=(("R", "A"), ("R", "B")),
                has_conds=True,
            ),
        )
        store._learn(specs, (6,), self.stats())
        assert store.ndv_overrides == {}

    def test_observe_rejects_misaligned_actuals(self):
        store = FeedbackStore()
        query = parse_query(JOIN_Q)
        stats = self.stats()
        # the plan has two binding levels; one actual cannot align
        assert (
            store.observe(query, stats, (7,), rows=7, elapsed_seconds=0.0)
            is None
        )
        assert store.observed == 0

    def test_clear_drops_overrides_and_bumps_version(self):
        store = FeedbackStore()
        store._set_card("R", 500.0)
        store._set_ndv(("R", "A"), 2.0)
        version = store.version
        store.clear()
        assert not store.has_corrections()
        assert store.version > version

    def test_fingerprint_is_drift_stable(self):
        # log2 bucketing: 100 vs 110 land in one bucket (no variant
        # churn in steady state), a further >2x drift re-keys.
        a, b, c = FeedbackStore(), FeedbackStore(), FeedbackStore()
        a._set_card("R", 100.0)
        b._set_card("R", 110.0)
        c._set_card("R", 300.0)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_corrected_statistics_leaves_base_untouched(self):
        store = FeedbackStore()
        store._set_card("R", 500.0)
        store._set_ndv(("R", "A"), 2.0)
        base = self.stats()
        adjusted = store.corrected_statistics(base)
        assert adjusted.card("R") == 500.0
        assert adjusted.distinct("R", "A") == 2.0
        assert base.card("R") == 12
        assert base.distinct("R", "A") == 4

    def test_ring_buffer_and_jsonl_export(self, tmp_path):
        store = FeedbackStore(capacity=2)
        query = parse_query(JOIN_Q)
        stats = self.stats()
        execution = execute(query, small_instance(), feedback=True)
        for _ in range(3):
            store.observe(
                query,
                stats,
                execution.level_rows,
                rows=len(execution.results),
                elapsed_seconds=0.001,
            )
        assert store.observed == 3 and len(store) == 2
        path = tmp_path / "feedback.jsonl"
        assert store.export_jsonl(str(path)) == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        assert all("max_qerror" in rec and "levels" in rec for rec in records)


# -- zero cost when off (acceptance gate) ------------------------------------


class TestZeroCostWhenOff:
    def test_default_database_has_no_feedback_state(self):
        db = Database(instance=small_instance())
        assert db.obs.feedback is None
        assert db.obs.regressions is None
        execution = db.execute(JOIN_Q)
        assert execution.level_rows is None
        assert "feedback" not in db.metrics()
        assert not any(
            name.startswith("feedback.") for name in db.obs.registry.counters
        )
        assert not any(
            name.startswith("feedback.")
            for name in db.obs.registry.histograms
        )
        db.close()

    def test_silent_artifact_carries_no_feedback_code(self):
        query = parse_query(JOIN_Q)
        source = generate_source(query)
        assert "_fb" not in source and "_r0" not in source
        compiled = compile_plan(query)
        assert compiled.feedback is False
        # def _plan(instance, counters, _params): — no _fb out-parameter
        assert compiled.fn.__code__.co_argcount == 3

    def test_feedback_artifact_is_a_distinct_variant(self):
        query = parse_query(JOIN_Q)
        source = generate_source(query, feedback=True)
        assert "_fb" in source and "_r0" in source
        compiled = compile_plan(query, feedback=True)
        assert compiled.feedback is True
        assert compiled.fn.__code__.co_argcount == 4
        out = []
        results = compiled.run(small_instance(), feedback_out=out)
        assert len(out) == 1 and len(out[0]) == 2
        interp = execute(parse_query(JOIN_Q), small_instance(), feedback=True)
        assert out[0] == interp.level_rows
        assert results == interp.results

    def test_compiled_database_default_stays_silent(self):
        db = Database(instance=small_instance(), exec_mode="compiled")
        execution = db.execute(JOIN_Q)
        assert execution.mode == "compiled"
        assert execution.level_rows is None
        db.close()


# -- collection and stamping with feedback on ---------------------------------


class TestFeedbackCollection:
    @pytest.mark.parametrize("exec_mode", ["interpret", "compiled"])
    def test_execute_collects_and_stamps(self, exec_mode):
        db = Database(
            instance=small_instance(),
            obs=ObsConfig(feedback=True),
            exec_mode=exec_mode,
        )
        execution = db.execute(JOIN_Q)
        assert execution.level_rows is not None
        assert len(execution.level_rows) == 2  # two binding levels
        store = db.obs.feedback
        assert store.observed == 1
        assert db.obs.registry.counters["feedback.observations"].value == 1
        assert db.obs.registry.histograms["feedback.qerror"].count == 2
        assert db.obs.registry.histograms["feedback.qerror.max"].count == 1
        (entry,) = db._plan_cache._entries.values()
        assert entry.worst_qerror >= 1.0
        assert entry.baseline_seconds is not None
        snapshot = db.metrics()
        assert snapshot["feedback"]["observed"] == 1
        assert "regressions" in snapshot
        assert "disabled" not in db.feedback_report()
        db.close()

    def test_mutation_clears_corrections(self):
        db = Database(
            instance=small_instance(), obs=ObsConfig(feedback=True)
        )
        store = db.obs.feedback
        store._set_card("R", 500.0)
        db.instance["T"] = frozenset({Row(A=0, C=0)})
        assert not store.has_corrections()
        db.close()

    def test_session_cold_path_feeds_the_store(self):
        db = Database(
            instance=small_instance(), obs=ObsConfig(feedback=True)
        )
        with db.session() as sess:
            sess.run(parse_query(JOIN_Q))
        store = db.obs.feedback
        assert store.observed == 1
        assert store.entries[-1].source == "session.cold"
        db.close()


# -- estimate + actuals parity (the acceptance pin) ---------------------------


def _level_tail_indexes(query, use_hash_joins):
    """Chain index of each binding level's tail op (the Filter following
    the bind when present, the bind itself otherwise) — where both the
    level replay and the analyzer place the level's row count."""

    ops = _chain(compile_query(query, use_hash_joins=use_hash_joins))
    tails = []
    for idx, op in enumerate(ops):
        if not isinstance(op, (ScanBind, HashJoinBind)):
            continue
        nxt = ops[idx + 1] if idx + 1 < len(ops) else None
        tails.append(idx + 1 if isinstance(nxt, Filter) else idx)
    return tails


class TestParityWithExplainAnalyze:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_replay_matches_analyze_and_modes_agree(self, name):
        db = Database.from_workload(name, obs=ObsConfig(feedback=True))
        query = db.optimize(db.workload.query).best.query
        stats = db.context.statistics
        hash_joins = db.context.use_hash_joins

        specs = db.obs.feedback.specs_for(query, stats, hash_joins)
        analysis = analyze_query(
            query, db.instance, use_hash_joins=hash_joins, statistics=stats
        )
        tails = _level_tail_indexes(query, hash_joins)
        assert len(tails) == len(specs) > 0

        # (1) estimated rows: bit-identical to the EXPLAIN ANALYZE column
        for spec, tail in zip(specs, tails):
            assert spec.est_rows == analysis.op_stats[tail].est_rows

        # (2) actuals: the interpreted engine agrees with the analyzer's
        # instrumented row counts at every level tail
        interp = execute(
            query, db.instance, use_hash_joins=hash_joins, feedback=True
        )
        assert interp.level_rows is not None
        for actual, tail in zip(interp.level_rows, tails):
            assert actual == analysis.op_stats[tail].rows

        # (3) the compiled engine (when the plan compiles) reports the
        # same actuals and the same answers
        try:
            compiled = compile_plan(
                query, use_hash_joins=hash_joins, feedback=True
            )
        except PlanCompilationError:
            compiled = None
        if compiled is not None:
            comp = execute(
                query,
                db.instance,
                use_hash_joins=hash_joins,
                mode="compiled",
                compiled=compiled,
                feedback=True,
            )
            assert comp.level_rows == interp.level_rows
            assert comp.results == interp.results
        db.close()


# -- regression log -----------------------------------------------------------


class TestPlanRegressionLog:
    def test_qerror_threshold_flags(self):
        log = PlanRegressionLog(qerror_threshold=16.0)
        assert log.observe("q", max_qerror=8.0, elapsed_seconds=0.01) is None
        flagged = log.observe("q", max_qerror=16.0, elapsed_seconds=0.01)
        assert flagged is not None and flagged.kind == "qerror"
        assert log.flagged == 1 and log.observed == 2

    def test_latency_drift_flags_against_baseline(self):
        log = PlanRegressionLog(latency_ratio=8.0)
        flagged = log.observe(
            "q", max_qerror=1.0, elapsed_seconds=0.1, baseline_seconds=0.01
        )
        assert flagged is not None and flagged.kind == "latency"
        assert flagged.value == pytest.approx(10.0)

    def test_sub_millisecond_jitter_never_flags(self):
        log = PlanRegressionLog(latency_ratio=2.0)
        elapsed = MIN_DRIFT_SECONDS / 2
        assert (
            log.observe(
                "q",
                max_qerror=1.0,
                elapsed_seconds=elapsed,
                baseline_seconds=elapsed / 100,
            )
            is None
        )

    def test_capacity_bounds_entries(self):
        log = PlanRegressionLog(qerror_threshold=2.0, capacity=3)
        for i in range(5):
            log.observe(f"q{i}", max_qerror=4.0, elapsed_seconds=0.01)
        assert len(log) == 3 and log.flagged == 5
        assert [e["query"] for e in log.as_dicts()] == ["q2", "q3", "q4"]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PlanRegressionLog(qerror_threshold=0.5)
        with pytest.raises(ValueError):
            PlanRegressionLog(latency_ratio=0.5)
        with pytest.raises(ValueError):
            PlanRegressionLog(capacity=0)


class TestQerrorHistogram:
    def test_geometric_buckets_and_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("feedback.qerror", bounds=QERROR_BUCKETS)
        for value in (1.0, 1.2, 2.5, 40.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.quantile(0.5) == 1.5  # two of four within the 1.5 bucket
        assert hist.quantile(1.0) == 64.0
        # dimensionless rendering: Q-errors are not latencies
        rendered = registry.render()
        assert "feedback.qerror" in rendered
        assert "ms" not in rendered.split("feedback.qerror", 1)[1].split("\n")[0]


# -- drift -> flag -> replan, and answer preservation -------------------------


def drifted_database(**kwargs) -> Database:
    """A Database whose catalog is pinned (explicit statistics, so
    mutations never refresh it) and whose R extent then drifts 25x with
    every new row matching the selection — the bench's E20 scenario in
    miniature."""

    instance = small_instance()
    stats = Statistics.from_instance(instance)
    db = Database(instance=instance, statistics=stats, **kwargs)
    drift = frozenset(
        Row(A=0, B=i % 3, C=100 + i) for i in range(300)
    )
    db.instance["R"] = db.instance["R"] | drift
    return db


DRIFT_Q = (
    "select struct(B = r.B, C = s.C) from R r, S s "
    "where r.A = 0 and r.B = s.B"
)


class TestDriftFlagReplan:
    def test_drift_is_flagged_and_replanned(self):
        db = drifted_database(
            obs=ObsConfig(feedback=True, qerror_threshold=4.0),
            cache_config=CacheConfig(feedback_replan=True),
        )
        reference = db.execute_plan(db.optimize(DRIFT_Q).best).results
        for _ in range(4):
            assert db.execute(DRIFT_Q).results == reference
        counters = db.obs.registry.counters
        assert counters["feedback.regressions"].value >= 1
        assert counters["feedback.replans"].value >= 1
        assert db.obs.feedback.has_corrections()
        # the corrected catalog learned the drifted R cardinality
        assert db.obs.feedback.card_overrides["R"] > 100
        # the variant entry is tagged with the corrections fingerprint
        assert any(
            "#fb:" in str(key) for key in db._plan_cache._entries
        )
        db.close()

    def test_replan_off_by_default_still_detects(self):
        db = drifted_database(
            obs=ObsConfig(feedback=True, qerror_threshold=4.0)
        )
        for _ in range(3):
            db.execute(DRIFT_Q)
        counters = db.obs.registry.counters
        assert counters["feedback.regressions"].value >= 1
        assert "feedback.replans" not in counters
        assert not any(
            "#fb:" in str(key) for key in db._plan_cache._entries
        )
        db.close()


class TestAnswerPreservationProperty:
    QUERIES = [
        JOIN_Q,
        DRIFT_Q,
        "select struct(A = r.A) from R r where r.A = 1",
        "select struct(C = t.C) from S s, T t where s.C = t.C",
        "select struct(A = r.A, C = t.C) from R r, T t "
        "where r.A = t.A and t.C = 2",
    ]

    def test_feedback_replan_preserves_answers_under_mutation(self):
        rng = random.Random(20990807)
        instance = small_instance()
        db = Database(
            instance=instance,
            statistics=Statistics.from_instance(instance),
            obs=ObsConfig(feedback=True, qerror_threshold=2.0),
            cache_config=CacheConfig(feedback_replan=True),
        )
        for step in range(24):
            if step and rng.random() < 0.3:
                # mutate T (sometimes skewed toward the joined values)
                rows = frozenset(
                    Row(A=rng.randrange(4) if rng.random() < 0.5 else 0,
                        C=rng.randrange(5))
                    for _ in range(rng.randrange(1, 40))
                )
                db.instance["T"] = rows
            query = rng.choice(self.QUERIES)
            with Database(instance=db.instance) as cold:
                expected = cold.execute(query).results
            assert db.execute(query).results == expected, (step, query)
        assert db.obs.feedback.observed >= 24
        db.close()


# -- satellite wirings --------------------------------------------------------


class TestSatelliteWirings:
    def test_prepared_run_feeds_the_slow_log(self):
        db = Database(
            instance=small_instance(),
            obs=ObsConfig(slow_query_threshold=0.0),
        )
        db.prepare(parse_query(JOIN_Q)).run()
        sources = [entry.source for entry in db.obs.slow_log.entries]
        assert "prepared" in sources
        db.close()

    def test_default_sample_thresholds(self):
        assert default_sample(None) is None
        assert default_sample(small_instance()) is None
        assert default_sample(small_instance(), sample=7) == 7
        big = Instance(
            {"R": frozenset(Row(A=i) for i in range(AUTO_SAMPLE_THRESHOLD + 1))}
        )
        assert default_sample(big) == AUTO_SAMPLE_SIZE
        assert default_sample(big, sample=50) == 50

    def test_capped_set_sampling_is_order_free(self):
        rows = [Row(A=i, B=i % 7) for i in range(100)]
        forward = frozenset(rows)
        backward = frozenset(reversed(rows))
        a = _capped(forward, 10)
        b = _capped(backward, 10)
        assert sorted(map(repr, a)) == sorted(map(repr, b))
        assert len(a) == 10
        # under the cap: everything, no sampling
        assert len(_capped(forward, 1000)) == 100

    def test_sampled_statistics_are_reproducible(self):
        instance = small_instance()
        first = Statistics.from_instance(instance, sample=5)
        second = Statistics.from_instance(instance, sample=5)
        assert first.card("R") == second.card("R")
        assert first.distinct("R", "A") == second.distinct("R", "A")
