"""Cross-strategy golden suite: the optimizer's winners, snapshotted.

For the paper scenario (ProjDept, whose plan space contains P1–P4) and
every built-in workload, the chosen plan's shape and cost under **both**
backchase strategies are snapshotted in ``tests/golden/plans.json``.  Any
silent drift — a cost-model tweak reordering winners, a backchase change
losing a plan, a strategy divergence — fails loudly here instead of
slipping through the behavioral tests.

Regenerate intentionally with ``make golden`` (sets ``GOLDEN_REGEN=1``),
then review the diff of ``tests/golden/plans.json`` like any other code
change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.optimizer.optimizer import Optimizer
from repro.workloads.oo_asr import build_oo_asr
from repro.workloads.projdept import build_projdept
from repro.workloads.relational import build_rabc, build_rs

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "plans.json"
STRATEGIES = ("full", "pruned")
REGEN = os.environ.get("GOLDEN_REGEN") == "1"


def build_cases():
    """The deterministic workloads the suite snapshots (fixed seeds)."""

    return {
        "projdept": build_projdept(n_depts=4, projs_per_dept=3, seed=3),
        "rabc": build_rabc(n=300, a_values=20, b_values=20, seed=5),
        "rs": build_rs(n_r=60, n_s=60, b_values=30, seed=5),
        "oo_asr": build_oo_asr(),
    }


def optimize(workload, strategy: str):
    opt = Optimizer(
        workload.constraints,
        physical_names=workload.physical_names,
        statistics=workload.statistics,
        strategy=strategy,
    )
    return opt.optimize(workload.query)


def snapshot_entry(result) -> dict:
    """What the suite locks down for one (workload, strategy) pair."""

    return {
        "best_plan": str(result.best.query),
        "best_key": result.best.query.canonical_key(),
        "cost": round(result.best.cost, 6),
        "physical_only": result.best.physical_only,
        "refined": result.best.refined,
        "universal_plan_bindings": len(result.universal_plan.bindings),
        "plan_count": len(result.plans),
    }


def compute_snapshot() -> dict:
    cases = build_cases()
    data = {
        name: {
            strategy: snapshot_entry(optimize(workload, strategy))
            for strategy in STRATEGIES
        }
        for name, workload in cases.items()
    }
    # The paper plans P1-P4: the full enumeration must keep finding them
    # (canonical keys locked), and which one wins is part of the snapshot.
    projdept = cases["projdept"]
    full = optimize(projdept, "full")
    keys = {p.query.canonical_key() for p in full.plans}
    data["paper_examples"] = {
        name: {
            "key": plan.canonical_key(),
            "in_full_plan_space": plan.canonical_key() in keys,
        }
        for name, plan in sorted(projdept.reference_plans.items())
    }
    return data


@pytest.fixture(scope="module")
def computed():
    return compute_snapshot()


@pytest.mark.golden
def test_golden_plans_match(computed):
    """The live optimizer output equals the reviewed snapshot, key by key."""

    if REGEN:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(computed, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"golden file missing at {GOLDEN_PATH}; generate it with `make golden`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    mismatches = []
    for case, strategies in golden.items():
        for strategy, expected in strategies.items():
            actual = computed.get(case, {}).get(strategy)
            if actual != expected:
                mismatches.append(
                    f"{case}/{strategy}:\n  golden:  {expected}\n  actual:  {actual}"
                )
    extra = {
        f"{case}/{strategy}"
        for case, strategies in computed.items()
        for strategy in strategies
        if strategy not in golden.get(case, {})
    }
    if extra:
        mismatches.append(f"cases missing from golden file: {sorted(extra)}")
    assert not mismatches, (
        "optimizer output drifted from the golden snapshot "
        "(if intentional, regenerate with `make golden` and review the diff):\n"
        + "\n".join(mismatches)
    )


@pytest.mark.golden
def test_strategies_agree_on_cost(computed):
    """Strategy invariant, independent of the snapshot: pruned's winner
    always costs the same as full's (the ROADMAP's preserved property)."""

    for case, strategies in computed.items():
        if case == "paper_examples":
            continue
        full, pruned = strategies["full"], strategies["pruned"]
        assert full["cost"] == pytest.approx(pruned["cost"]), case
        assert full["physical_only"] == pruned["physical_only"], case
        assert pruned["plan_count"] <= full["plan_count"], case


@pytest.mark.golden
def test_paper_plans_stay_in_plan_space(computed):
    """P1-P4 presence is part of the contract, not just the snapshot."""

    examples = computed["paper_examples"]
    assert set(examples) == {"P1", "P2", "P3", "P4"}
    # P2 and P3 appear verbatim in the full plan space.  P1 is non-minimal
    # under the full structure set (subsumed) and P4 surfaces as a refined
    # variant rather than its textbook form (test_paper_examples matches
    # them structurally) — their canonical keys are still locked by the
    # snapshot comparison, so any drift in *shape* fails the golden test.
    for name in ("P2", "P3"):
        assert examples[name]["in_full_plan_space"], name
