"""Cross-module integration: DDL → structures → optimize → execute, plus
failure injection (the optimizer must never be fed an inconsistent
implementation mapping silently).
"""

import pytest

from repro import (
    Instance,
    Optimizer,
    Row,
    RuleBasedOptimizer,
    SecondaryIndex,
    Statistics,
    check_all,
    evaluate,
    execute,
    parse_ddl,
    parse_query,
)
from repro.model.values import DictValue


DDL = """
relation Orders {
    OId: int, Cust: string, Total: int
    primary key (OId)
}
relation Customers {
    Name: string, City: string
    primary key (Name)
}
"""


@pytest.fixture
def pipeline():
    ddl = parse_ddl(DDL)
    orders = frozenset(
        Row(OId=i, Cust=f"C{i % 6}", Total=i * 10) for i in range(60)
    )
    customers = frozenset(Row(Name=f"C{i}", City=f"City{i % 3}") for i in range(6))
    instance = Instance({"Orders": orders, "Customers": customers})
    index = SecondaryIndex("ByCust", "Orders", "Cust")
    index.install(instance, ddl.schema)
    constraints = list(ddl.constraints) + index.constraints()
    return ddl, instance, index, constraints


class TestFullPipeline:
    def test_constraints_hold(self, pipeline):
        _, instance, _, constraints = pipeline
        assert check_all(constraints, instance) == []

    def test_optimize_and_execute(self, pipeline):
        _, instance, _, constraints = pipeline
        query = parse_query(
            'select o.Total from Orders o where o.Cust = "C3"'
        )
        opt = Optimizer(
            constraints,
            physical_names={"Orders", "Customers", "ByCust"},
            statistics=Statistics.from_instance(instance),
        )
        result = opt.optimize(query)
        assert "ByCust" in str(result.best.query)
        assert execute(result.best.query, instance).results == evaluate(
            query, instance
        )

    def test_join_query_with_fk_semantics(self, pipeline):
        ddl, instance, _, constraints = pipeline
        # add the FK Orders.Cust -> Customers.Name and use it for join
        # elimination when only order attributes are projected
        from repro.constraints.builders import foreign_key

        deps = constraints + [
            foreign_key("orders_fk", "Orders", "Cust", "Customers", "Name")
        ]
        query = parse_query(
            "select struct(T = o.Total) from Orders o, Customers c "
            "where o.Cust = c.Name"
        )
        opt = Optimizer(
            deps,
            physical_names={"Orders", "Customers", "ByCust"},
            statistics=Statistics.from_instance(instance),
        )
        result = opt.optimize(query)
        # the FK makes the Customers join removable
        assert any(
            "Customers" not in p.query.schema_names() for p in result.plans
        )
        reference = evaluate(query, instance)
        for plan in result.plans:
            assert evaluate(plan.query, instance) == reference

    def test_rule_based_agrees_with_algorithm1(self, pipeline):
        _, instance, _, constraints = pipeline
        query = parse_query('select o.Total from Orders o where o.Cust = "C3"')
        stats = Statistics.from_instance(instance)
        # full enumeration: the count comparison below needs every normal form
        direct = Optimizer(
            constraints,
            physical_names={"Orders", "Customers", "ByCust"},
            statistics=stats,
            reorder=False,
            strategy="full",
        ).optimize(query)
        rule_based = RuleBasedOptimizer(constraints, statistics=stats)
        ranked = rule_based.search(query)
        # same normal-form count modulo refinement variants
        unrefined = [p for p in direct.plans if not p.refined]
        assert len(ranked) == len(unrefined)


class TestFailureInjection:
    def test_stale_index_detected(self, pipeline):
        _, instance, index, constraints = pipeline
        instance["Orders"] = instance["Orders"] | {
            Row(OId=999, Cust="C0", Total=1)
        }
        failures = check_all(constraints, instance)
        assert any(name == "ByCust_si1" for name, _ in failures)

    def test_corrupt_bucket_detected(self, pipeline):
        _, instance, index, constraints = pipeline
        data = dict(instance["ByCust"].items())
        data["C0"] = data["C0"] | {Row(OId=777, Cust="C0", Total=-1)}
        instance["ByCust"] = DictValue(data)
        failures = check_all(constraints, instance)
        assert any(name == "ByCust_si2" for name, _ in failures)

    def test_plan_on_inconsistent_instance_diverges(self, pipeline):
        """Demonstrates why the checker matters: with a stale index the
        index plan and the scan disagree — the constraints were the only
        thing making them interchangeable."""

        _, instance, _, constraints = pipeline
        query = parse_query('select o.Total from Orders o where o.Cust = "C3"')
        index_plan = parse_query('select t.Total from ByCust{"C3"} t')
        assert evaluate(index_plan, instance) == evaluate(query, instance)
        instance["Orders"] = instance["Orders"] | {
            Row(OId=998, Cust="C3", Total=123456)
        }
        assert evaluate(index_plan, instance) != evaluate(query, instance)

    def test_key_violation_detected(self, pipeline):
        _, instance, _, constraints = pipeline
        instance["Orders"] = instance["Orders"] | {
            Row(OId=0, Cust="CX", Total=-5)  # duplicate OId
        }
        failures = check_all(constraints, instance)
        assert any("key" in name for name, _ in failures)
