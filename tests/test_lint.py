"""The ``repro.lint`` CLI: corpus health, seeded failures, exit codes,
``--json`` mode and CI annotations.

The corpus and checks themselves live in :mod:`repro.analysis.corpus`
(re-exported by :mod:`repro.lint` for backward compatibility); these
tests drive them through the CLI surface the Makefile and CI use, and
prove the lint actually *fails* when the printer drifts or codegen
emits broken Python — by seeding exactly those bugs via monkeypatch.
"""

from __future__ import annotations

import json

import pytest

import repro.analysis.corpus as corpus_mod
import repro.exec.compile as compile_mod
import repro.lint as lint_mod
from repro.analysis.corpus import BUILTIN_CORPUS, check_codegen, check_roundtrip, run_lint


def test_builtin_corpus_is_clean():
    assert run_lint() == []


def test_corpus_covers_verifier_constructs():
    names = {name for name, _ in BUILTIN_CORPUS}
    # the guard-dominance shapes the static verifier stresses
    assert {
        "template-shared-relation",
        "guarded-lookup-pair",
        "guarded-lookup-alias",
        "navigation-lookup",
    } <= names


def test_lint_reexports_are_the_corpus_module():
    assert lint_mod.BUILTIN_CORPUS is BUILTIN_CORPUS
    assert lint_mod.run_lint is run_lint
    assert lint_mod.check_roundtrip is check_roundtrip
    assert lint_mod.check_codegen is check_codegen


def test_seeded_printer_drift_is_reported(monkeypatch):
    # a printer that forgets the where-clause: re-parse succeeds but the
    # canonical key (and the parameter list, for templates) drifts
    monkeypatch.setattr(
        corpus_mod, "format_query", lambda query: "select r.A from R r"
    )
    problems = check_roundtrip(
        "join",
        "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
    )
    assert problems
    assert any("canonical key drifts" in p for p in problems)


def test_seeded_printer_crash_is_reported(monkeypatch):
    monkeypatch.setattr(
        corpus_mod, "format_query", lambda query: "select from nowhere ("
    )
    problems = check_roundtrip("join", BUILTIN_CORPUS[0][1])
    assert any("printed form does not re-parse" in p for p in problems)


def test_seeded_codegen_syntax_failure_is_reported(monkeypatch):
    monkeypatch.setattr(
        compile_mod,
        "generate_source",
        lambda query, use_hash_joins=False, cached_names=None: (
            "def _plan(instance, counters, _params:\n    return []\n"
        ),
    )
    problems = check_codegen("join", BUILTIN_CORPUS[0][1])
    # both scan modes hit the same sabotaged generator
    assert len(problems) == 2
    assert all("not valid Python" in p for p in problems)


def test_unparsable_query_file_fails_lint(tmp_path):
    bad = tmp_path / "bad.oql"
    bad.write_text("select struct( from where")
    problems = run_lint([str(bad)])
    assert any("does not parse" in p for p in problems)


def test_missing_query_file_fails_lint(tmp_path):
    missing = tmp_path / "nope.oql"
    assert any(str(missing) in p for p in run_lint([str(missing)]))


def test_cli_exit_codes(tmp_path, capsys):
    assert lint_mod.main([]) == 0
    out = capsys.readouterr().out
    assert "round-trip and codegen clean" in out

    bad = tmp_path / "bad.oql"
    bad.write_text("select struct( from where")
    assert lint_mod.main([str(bad)]) == 1
    captured = capsys.readouterr()
    assert "problem(s)" in captured.out
    assert "does not parse" in captured.err


def test_cli_json_mode(tmp_path, capsys):
    assert lint_mod.main(["--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["problems"] == []
    assert payload["checked"] == len(BUILTIN_CORPUS)

    bad = tmp_path / "bad.oql"
    bad.write_text("select struct( from where")
    assert lint_mod.main(["--json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["checked"] == len(BUILTIN_CORPUS) + 1
    assert any("does not parse" in p for p in payload["problems"])


def test_cli_ci_annotations(tmp_path, capsys, monkeypatch):
    bad = tmp_path / "bad.oql"
    bad.write_text("select struct( from where")

    monkeypatch.delenv("CI", raising=False)
    assert lint_mod.main([str(bad)]) == 1
    assert "::error" not in capsys.readouterr().out

    monkeypatch.setenv("CI", "1")
    assert lint_mod.main([str(bad)]) == 1
    assert "::error ::lint:" in capsys.readouterr().out
