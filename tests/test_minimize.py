"""Unit tests for generalized tableau minimization."""

from repro.backchase.minimize import minimize, minimize_all
from repro.chase.containment import is_equivalent
from repro.query.parser import parse_constraint, parse_query


def q(text):
    return parse_query(text)


class TestClassicalMinimization:
    def test_paper_example(self):
        query = q(
            "select struct(A = p.A, B = r.B) from R p, R q, R r "
            "where p.B = q.A and q.B = r.B"
        )
        minimal = minimize(query)
        assert len(minimal.bindings) == 2
        assert is_equivalent(minimal, query)

    def test_idempotent(self):
        query = q(
            "select struct(A = p.A, B = r.B) from R p, R q, R r "
            "where p.B = q.A and q.B = r.B"
        )
        once = minimize(query)
        twice = minimize(once)
        assert once.canonical_key() == twice.canonical_key()

    def test_minimal_query_unchanged(self):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        assert minimize(query).canonical_key() == query.canonical_key()

    def test_cartesian_self_join_folds(self):
        query = q("select struct(A = p.A) from R p, R q")
        minimal = minimize(query)
        assert len(minimal.bindings) == 1

    def test_fold_needs_compatible_conditions(self):
        query = q("select struct(A = p.A) from R p, R q where q.B = 5")
        minimal = minimize(query)
        # q cannot fold onto p (p is not filtered) nor p onto q (output)...
        # actually p CAN fold onto q: output A = q.A under p = q? No: folding
        # requires q.B = 5 to imply nothing about p. Removing p needs p ≡ q
        # which is not implied. Removing q loses the filter.
        assert len(minimal.bindings) == 2


class TestSemanticMinimization:
    def test_ric_join_elimination(self):
        deps = [
            parse_constraint(
                "forall (p in Proj) -> exists (d in depts) p.PDept = d.DName",
                "RIC",
            )
        ]
        query = q(
            "select struct(N = p.PName) from Proj p, depts d where p.PDept = d.DName"
        )
        minimal = minimize(query, deps)
        assert minimal.binding_vars() == ("p",)
        assert is_equivalent(minimal, query, deps)

    def test_key_based_self_join_elimination(self):
        deps = [
            parse_constraint(
                "forall (x in R, y in R) where x.K = y.K -> x = y", "KEY"
            )
        ]
        query = q(
            "select struct(A = x.A, B = y.B) from R x, R y where x.K = y.K"
        )
        minimal = minimize(query, deps)
        assert len(minimal.bindings) == 1
        # without the key constraint the join is genuinely needed
        assert len(minimize(query).bindings) == 2

    def test_minimize_all_returns_each_form(self):
        deps = [
            parse_constraint("forall (r in R) -> exists (s in S) r.A = s.A", "i1"),
            parse_constraint("forall (s in S) -> exists (r in R) s.A = r.A", "i2"),
        ]
        query = q("select struct(A = r.A) from R r, S s where r.A = s.A")
        forms = minimize_all(query, deps)
        # both the R-only and the S-only forms are minimal
        assert len(forms) == 2
        sources = {f.bindings[0].source for f in forms}
        assert len(sources) == 2
