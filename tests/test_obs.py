"""Unit tests for the observability layer (``repro.obs``).

Covers: the span/event tracer (nesting, request grouping, JSONL export,
error tagging, ring-buffer eviction), the metrics registry (monotone
counters, histograms, pull-based legacy sources), the slow-query log,
per-request :class:`QueryReport` timelines, the **overhead guard** (a
disabled tracer allocates nothing on the hot path and production plans
carry no per-tuple instrumentation), and the **counter-parity guarantee**
(registry-surfaced values bit-identical to the legacy counter families:
``BackchaseStats``, containment ``cache_info()``, semcache ``CacheStats``,
``plan_cache_info()``).
"""

from __future__ import annotations

import dataclasses
import json
import tracemalloc

import pytest

from repro import (
    Database,
    MetricsRegistry,
    Observability,
    ObsConfig,
    QueryReport,
    SlowQueryLog,
    Tracer,
    execute,
    parse_query,
)
from repro.exec.planner import compile_query
from repro.obs.trace import NOOP_SPAN, NOOP_TRACER
from repro.workloads.relational import build_rs


@pytest.fixture(scope="module")
def rs():
    return build_rs(n_r=60, n_s=60, b_values=30, seed=5)


JOIN_Q = "select struct(A = r.A) from R r, S s where r.B = s.B"


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_span_records_name_attrs_and_duration(self):
        tracer = Tracer()
        with tracer.span("phase.chase", steps=3) as sp:
            sp.set(bindings=7)
        assert len(tracer) == 1
        span = tracer.spans[0]
        assert span.name == "phase.chase"
        assert span.attrs == {"steps": 3, "bindings": 7}
        assert span.duration >= 0.0
        assert span.end is not None

    def test_nesting_depth_and_request_grouping(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        with tracer.span("outer2"):
            pass
        assert [s.name for s in tracer.spans] == ["inner", "outer", "outer2"]
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # each top-level span opens a new request
        assert by_name["outer"].request_id == by_name["inner"].request_id
        assert by_name["outer2"].request_id != by_name["outer"].request_id
        assert tracer.requests() == [
            by_name["outer"].request_id, by_name["outer2"].request_id
        ]

    def test_request_spans_default_latest_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("root"):
            tracer.event("evt")
        spans = tracer.request_spans()
        assert [s.name for s in spans] == ["root", "evt"]
        assert [s.name for s in tracer.request_spans(1)] == ["a"]

    def test_event_is_zero_length(self):
        tracer = Tracer()
        span = tracer.event("plan_cache.lookup", hit=True)
        assert span.end is not None
        assert span.attrs == {"hit": True}

    def test_exception_propagates_and_tags_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert tracer.spans[0].attrs == {"error": "ValueError"}

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(max_spans=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in tracer.spans] == ["b", "c"]

    def test_disabled_returns_the_noop_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x", a=1) is NOOP_SPAN
        assert tracer.event("y") is NOOP_SPAN
        assert tracer.span("x") is tracer.span("y")
        assert len(tracer) == 0

    def test_enable_disable_clear(self):
        tracer = Tracer(enabled=False)
        tracer.enable()
        with tracer.span("now"):
            pass
        assert len(tracer) == 1
        tracer.disable()
        with tracer.span("not-recorded"):
            pass
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", tier="cold"):
            tracer.event("evt", n=2)
        records = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
        assert [r["name"] for r in records] == ["evt", "root"]
        assert records[1]["attrs"] == {"tier": "cold"}
        assert all(r["start_ms"] >= 0.0 for r in records)
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        assert path.read_text().count("\n") == 2

    def test_span_durations_feed_latency_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("phase.exec"):
            pass
        hist = registry.histograms["latency.phase.exec"]
        assert hist.count == 1

    def test_add_counters_works_while_disabled(self):
        registry = MetricsRegistry()
        tracer = Tracer(enabled=False, registry=registry)
        tracer.add_counters("backchase", {"explored": 5, "skipped": 0.5})
        assert registry.counters["backchase.explored"].value == 5
        assert "backchase.skipped" not in registry.counters  # floats skipped


# -- metrics registry ---------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_are_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(2)
        counter.inc()
        assert counter.value == 3
        with pytest.raises(ValueError, match="monotone"):
            counter.inc(-1)
        assert registry.counter("c") is counter  # create-on-first-use

    def test_add_counters_skips_bools_and_floats(self):
        registry = MetricsRegistry()
        registry.add_counters(
            "fam", {"hits": 2, "flag": True, "benefit_accrued": 1.5}
        )
        assert set(registry.counters) == {"fam.hits"}

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for v in (0.00005, 0.05, 99.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.min == 0.00005
        assert hist.max == 99.0
        assert hist.mean == pytest.approx((0.00005 + 0.05 + 99.0) / 3)
        d = hist.as_dict()
        assert d["buckets"]["le_0.0001"] == 1
        assert d["buckets"]["le_0.1"] == 1
        assert d["buckets"]["overflow"] == 1

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(7)
        registry.gauge("g").set(3)
        assert registry.snapshot()["gauges"] == {"g": 3}

    def test_sources_are_read_live_at_snapshot(self):
        registry = MetricsRegistry()
        state = {"hits": 0}
        registry.register_source("fam", lambda: dict(state))
        assert registry.snapshot()["sources"]["fam"] == {"hits": 0}
        state["hits"] = 5
        assert registry.snapshot()["sources"]["fam"] == {"hits": 5}

    def test_source_returning_none_is_omitted(self):
        registry = MetricsRegistry()
        registry.register_source("dead", lambda: None)
        assert "dead" not in registry.snapshot()["sources"]

    def test_broken_source_reports_error_not_crash(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("gone")

        registry.register_source("bad", broken)
        assert "RuntimeError" in registry.snapshot()["sources"]["bad"]["error"]

    def test_render_mentions_every_section(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.gauge("g").set(1)
        registry.histogram("latency.x").observe(0.001)
        registry.register_source("fam", lambda: {"hits": 1})
        text = registry.render()
        for needle in ("sources", "counters", "gauges", "latency", "a.b: 1"):
            assert needle in text
        assert MetricsRegistry().render().endswith("(empty)")


# -- slow-query log -----------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_and_counts(self):
        log = SlowQueryLog(threshold_seconds=0.1, capacity=8)
        assert not log.observe("fast", 0.05)
        assert log.observe("slow", 0.2, source="cold", rows=3)
        assert (log.observed, log.recorded, len(log)) == (2, 1, 1)
        (entry,) = log.as_dicts()
        assert entry["query"] == "slow"
        assert entry["source"] == "cold"
        assert entry["rows"] == 3

    def test_capacity_bounds_entries(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=2)
        for i in range(4):
            log.observe(f"q{i}", 1.0)
        assert [e["query"] for e in log.as_dicts()] == ["q2", "q3"]
        assert log.recorded == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_render(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.observe("select 1", 0.5, source="execute", rows=1)
        assert "select 1" in log.render()
        assert "(none)" in SlowQueryLog().render()


# -- query report -------------------------------------------------------------


class TestQueryReport:
    def test_phase_breakdown_and_render(self):
        tracer = Tracer()
        with tracer.span("db.execute"):
            with tracer.span("phase.chase"):
                pass
            with tracer.span("phase.exec"):
                pass
        report = QueryReport.from_tracer(tracer)
        assert set(report.phase_seconds()) == {"chase", "exec"}
        assert report.span_named("phase.chase") is not None
        assert report.span_named("nope") is None
        text = report.render()
        assert "db.execute" in text
        # nesting indents the children one level past the root
        assert "  phase.chase" in text

    def test_empty_report(self):
        report = QueryReport.from_tracer(Tracer())
        assert report.total_seconds == 0.0
        assert "no spans" in report.render()


# -- overhead guard (satellite: tracing off must cost nothing) ----------------


class TestOverheadGuard:
    def test_noop_tracer_records_and_allocates_nothing(self):
        # Warm up so lazy caches (attr lookups, code objects) don't count.
        for _ in range(10):
            with NOOP_TRACER.span("hot", attr=1):
                pass
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(10_000):
            with NOOP_TRACER.span("hot", attr=1) as sp:
                sp.set(more=2)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(NOOP_TRACER) == 0
        # Nothing survives the calls: net growth stays under a kilobyte
        # across ten thousand disabled spans.
        assert after - before < 1024

    def test_production_plans_carry_no_instrumentation(self, rs):
        # EXPLAIN ANALYZE shadows ``rows`` with instance attributes and
        # interposes timing proxies — but only on its own freshly compiled
        # plan.  Plans from the production compile path must stay clean.
        plan = compile_query(parse_query(JOIN_Q))
        op = plan
        while op is not None:
            assert "rows" not in vars(op), f"instrumented rows on {op!r}"
            op = getattr(op, "child", None)

    def test_execute_with_tracing_off_records_nothing(self, rs):
        result = execute(parse_query(JOIN_Q), rs.instance)
        assert result.results
        assert len(NOOP_TRACER) == 0


# -- counter parity (registry values == legacy counter families) --------------


class TestCounterParity:
    def test_backchase_and_containment_counters_match_legacy(self, rs):
        db = Database.from_workload("rs", n_r=60, n_s=60, b_values=30, seed=5)
        result = db.optimize(db.workload.query)
        counters = db.metrics()["counters"]
        legacy = result.backchase_stats.as_dict()
        for key, value in legacy.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            assert counters[f"backchase.{key}"] == value, key
        info = result.containment
        assert counters["containment.hits"] == info.hits
        assert counters["containment.misses"] == info.misses
        assert counters["containment.evictions"] == info.evictions
        db.close()

    def test_counters_accumulate_across_optimizes(self):
        db = Database.from_workload("rs", n_r=20, n_s=20, b_values=10, seed=1)
        r1 = db.optimize(parse_query(JOIN_Q))
        r2 = db.optimize(parse_query("select r.A from R r where r.B = 5"))
        counters = db.metrics()["counters"]
        expected = (
            r1.backchase_stats.as_dict()["candidates_explored"]
            + r2.backchase_stats.as_dict()["candidates_explored"]
        )
        assert counters["backchase.candidates_explored"] == expected
        db.close()

    def test_plan_cache_source_matches_plan_cache_info(self):
        db = Database.from_workload("rs", n_r=20, n_s=20, b_values=10, seed=1)
        db.execute(JOIN_Q)
        db.execute(JOIN_Q)
        snap = db.metrics()["sources"]["plan_cache"]
        assert snap == dataclasses.asdict(db.plan_cache_info())
        assert snap["hits"] >= 1  # the repeat hit the plan cache
        db.close()

    def test_semcache_source_matches_session_stats(self):
        db = Database.from_workload("rs", n_r=20, n_s=20, b_values=10, seed=1)
        session = db.session()
        query = parse_query(JOIN_Q)
        session.run(query)
        session.run(query)
        snap = db.metrics()["sources"]["semcache"]
        assert snap == session.stats.as_dict()
        assert snap["exact_hits"] == 1
        session.close()
        db.close()

    def test_dead_session_source_is_omitted(self):
        db = Database.from_workload("rs", n_r=20, n_s=20, b_values=10, seed=1)
        session = db.session()
        session.run(parse_query(JOIN_Q))
        session.close()
        del session
        assert "semcache" not in db.metrics()["sources"]
        db.close()

    def test_second_session_gets_its_own_source_name(self):
        db = Database.from_workload("rs", n_r=20, n_s=20, b_values=10, seed=1)
        s1 = db.session()
        s2 = db.session()
        s2.run(parse_query(JOIN_Q))
        sources = db.metrics()["sources"]
        assert sources["semcache"] == s1.stats.as_dict()
        assert sources["semcache#2"] == s2.stats.as_dict()
        assert sources["semcache#2"]["lookups"] == 1
        s1.close()
        s2.close()
        db.close()


# -- database wiring ----------------------------------------------------------


class TestDatabaseObservability:
    def test_traced_execute_produces_the_full_timeline(self):
        db = Database.from_workload(
            "rs", obs=ObsConfig(tracing=True),
            n_r=20, n_s=20, b_values=10, seed=1,
        )
        db.execute(JOIN_Q)
        names = {s.name for s in db.tracer.request_spans()}
        for expected in (
            "db.execute", "db.optimize", "plan_cache.lookup",
            "phase.chase", "phase.backchase", "phase.cost", "phase.exec",
        ):
            assert expected in names, expected
        report = db.query_report()
        assert report.total_seconds > 0.0
        assert {"chase", "backchase", "cost", "exec"} <= set(
            report.phase_seconds()
        )
        db.close()

    def test_metrics_snapshot_shape(self):
        db = Database.from_workload("rs", n_r=20, n_s=20, b_values=10, seed=1)
        snap = db.metrics()
        assert set(snap) >= {
            "counters", "gauges", "histograms", "sources",
            "slow_queries", "tracing",
        }
        assert snap["tracing"] == {"enabled": False, "spans_recorded": 0}
        assert "plan cache" not in snap  # sources carry the legacy families
        assert "plan_cache" in snap["sources"]
        text = db.metrics_report()
        assert "metrics" in text and "slow queries" in text
        db.close()

    def test_slow_log_threshold_zero_records_every_execute(self):
        db = Database.from_workload(
            "rs", obs=ObsConfig(slow_query_threshold=0.0),
            n_r=20, n_s=20, b_values=10, seed=1,
        )
        db.execute(JOIN_Q)
        entries = db.metrics()["slow_queries"]
        assert len(entries) == 1
        assert entries[0]["source"] == "execute"
        db.close()

    def test_session_runs_feed_the_slow_log(self):
        db = Database.from_workload(
            "rs", obs=ObsConfig(slow_query_threshold=0.0),
            n_r=20, n_s=20, b_values=10, seed=1,
        )
        session = db.session()
        session.run(parse_query(JOIN_Q))
        sources = [e["source"] for e in db.metrics()["slow_queries"]]
        assert "session.cold" in sources
        session.close()
        db.close()

    def test_prepared_run_traced_and_skew_free(self):
        db = Database.from_workload(
            "rs", obs=ObsConfig(tracing=True),
            n_r=20, n_s=20, b_values=10, seed=1,
        )
        prepared = db.prepare("select r.A from R r where r.B = $b")
        prepared.run(b=3)
        names = [s.name for s in db.tracer.request_spans()]
        assert "db.run_prepared" in names
        db.close()

    def test_observability_object_passthrough(self):
        obs = Observability(ObsConfig(tracing=True, max_spans=16))
        db = Database.from_workload(
            "rs", obs=obs, n_r=20, n_s=20, b_values=10, seed=1
        )
        assert db.obs is obs
        assert db.tracer is obs.tracer
        db.close()
