"""Access-support-relation rewriting end to end (§2's ASR story)."""

import pytest

from repro import Optimizer, check_all, evaluate, execute
from repro.workloads.oo_asr import build_oo_asr


@pytest.fixture(scope="module")
def workload():
    return build_oo_asr(n_depts=4, staff_per_dept=3, seed=17)


@pytest.fixture(scope="module")
def optimized(workload):
    # Full enumeration: the tests below assert specific (non-winning)
    # plans are present, which the pruned default does not guarantee.
    opt = Optimizer(
        workload.constraints,
        physical_names=workload.physical_names,
        statistics=workload.statistics,
        strategy="full",
    )
    return opt.optimize(workload.query)


class TestWorkload:
    def test_instance_consistent(self, workload):
        assert check_all(workload.constraints, workload.instance) == []

    def test_instance_well_typed(self, workload):
        assert workload.instance.validate(workload.schema) == []

    def test_asr_stores_oid_pairs(self, workload):
        from repro.model.values import Oid

        for row in workload.instance["ASR"]:
            assert isinstance(row["O0"], Oid) and row["O0"].class_name == "Dept"
            assert isinstance(row["O1"], Oid) and row["O1"].class_name == "Emp"


class TestASRRewriting:
    def test_asr_plan_discovered(self, optimized):
        """The navigation query rewrites to a single ASR scan with oid
        dereferences through the class dictionaries."""

        asr_plans = [
            p
            for p in optimized.plans
            if p.query.schema_names() == frozenset({"ASR"})
            and len(p.query.bindings) == 1
        ]
        assert asr_plans, [str(p) for p in optimized.plans]

    def test_asr_plan_wins_on_cost(self, optimized):
        assert optimized.best.query.schema_names() == frozenset({"ASR"})

    def test_dictionary_navigation_plan_also_found(self, optimized):
        assert any(
            "dom(Dept)" in str(b.source)
            for p in optimized.plans
            for b in p.query.bindings
        )

    def test_all_plans_agree(self, workload, optimized):
        reference = evaluate(workload.query, workload.instance)
        for plan in optimized.plans:
            assert evaluate(plan.query, workload.instance) == reference, str(plan)

    def test_executor_runs_asr_plan(self, workload, optimized):
        reference = evaluate(workload.query, workload.instance)
        run = execute(optimized.best.query, workload.instance)
        assert run.results == reference
        # one scan of the ASR: exactly |ASR| tuples touched
        assert run.counters.tuples == len(workload.instance["ASR"])


class TestStaleASR:
    def test_stale_asr_detected_and_divergent(self):
        wl = build_oo_asr(n_depts=3, staff_per_dept=2, seed=5)
        from repro.model.values import DictValue, Oid, Row

        # hire someone into D0 without refreshing the ASR
        new_emp = Oid("Emp", 999)
        emp_dict = dict(wl.instance["Emp"].items())
        emp_dict[new_emp] = Row(EName="E999", Salary=1)
        wl.instance["Emp"] = DictValue(emp_dict)
        wl.instance["emps"] = wl.instance["emps"] | {new_emp}
        d0 = next(iter(sorted(wl.instance["depts"])))
        dept_dict = dict(wl.instance["Dept"].items())
        old = dept_dict[d0]
        dept_dict[d0] = old.replace(Staff=old["Staff"] | {new_emp})
        wl.instance["Dept"] = DictValue(dept_dict)

        failures = check_all(wl.constraints, wl.instance)
        assert any("ASR" in name for name, _ in failures)
