"""Integration tests for Algorithm 1 on the relational scenarios."""

import pytest

from repro.exec.engine import execute
from repro.optimizer.optimizer import Optimizer
from repro.query.evaluator import evaluate
from repro.query.paths import Dom, Lookup, NFLookup


@pytest.fixture(scope="module")
def rabc_result(request):
    rabc = request.getfixturevalue("rabc")
    # Full enumeration: these tests assert on the complete plan set
    # (Theorem 2), which the pruned strategy deliberately does not produce.
    opt = Optimizer(
        rabc.constraints,
        physical_names=rabc.physical_names,
        statistics=rabc.statistics,
        strategy="full",
    )
    return rabc, opt.optimize(rabc.query)


@pytest.fixture(scope="module")
def rs_result(request):
    rs = request.getfixturevalue("rs_workload")
    # Full enumeration: several tests assert non-winning plans are present.
    opt = Optimizer(
        rs.constraints,
        physical_names=rs.physical_names,
        statistics=rs.statistics,
        strategy="full",
    )
    return rs, opt.optimize(rs.query)


class TestRabcOptimization:
    def test_universal_plan_contains_both_indexes(self, rabc_result):
        _, result = rabc_result
        names = result.universal_plan.schema_names()
        assert {"R", "SA", "SB"} <= names

    def test_index_only_plans_found(self, rabc_result):
        """Section 4 example 1: index-only access paths (no scan of R).

        Under the full SA/SB constraint set the paper's two-index
        intersection plan is reducible (the B-link survives as an explicit
        condition), so the minimal index-only plans probe one index and
        filter — one per index.  See EXPERIMENTS.md E4.
        """

        _, result = rabc_result
        no_scan = [p for p in result.plans if "R" not in p.query.schema_names()]
        assert any("SA" in p.query.schema_names() for p in no_scan)
        assert any("SB" in p.query.schema_names() for p in no_scan)

    def test_paper_intersection_plan_equivalent(self, rabc_result):
        """The literal §4 plan (dom SA scan + SB probes) is equivalent to Q
        under the constraints, even though it is not minimal."""

        from repro.chase.containment import is_equivalent
        from repro.query.parser import parse_query

        rabc, result = rabc_result
        paper_plan = parse_query(
            "select r1.C from dom(SA) x, SA[x] r1, SB{9} r2 "
            "where x = 5 and r1 = r2"
        )
        assert evaluate(paper_plan, rabc.instance) == evaluate(
            rabc.query, rabc.instance
        )

    def test_original_query_among_plans(self, rabc_result):
        rabc, result = rabc_result
        keys = {p.query.canonical_key() for p in result.plans}
        assert rabc.query.canonical_key() in keys

    def test_all_plans_agree_on_instance(self, rabc_result):
        rabc, result = rabc_result
        reference = evaluate(rabc.query, rabc.instance)
        for plan in result.plans:
            assert evaluate(plan.query, rabc.instance) == reference, str(plan)

    def test_best_plan_is_physical(self, rabc_result):
        _, result = rabc_result
        assert result.best.physical_only


class TestRsOptimization:
    def test_navigation_join_plan_found(self, rs_result):
        """Section 4 example 2: from V v, IR[v.A] r', IS{...}/dom-guard s'."""

        _, result = rs_result
        nav = [
            p
            for p in result.plans
            if "V" in p.query.schema_names()
            and any(
                isinstance(b.source, (Lookup, NFLookup)) for b in p.query.bindings
            )
        ]
        assert nav, [str(p) for p in result.plans]

    def test_nonfailing_refinement_applied(self, rs_result):
        _, result = rs_result
        refined = [p for p in result.plans if p.refined]
        assert refined
        assert any(
            isinstance(b.source, NFLookup)
            for p in refined
            for b in p.query.bindings
        )

    def test_all_plans_agree(self, rs_result):
        rs, result = rs_result
        reference = evaluate(rs.query, rs.instance)
        for plan in result.plans:
            assert evaluate(plan.query, rs.instance) == reference, str(plan)

    def test_executor_agrees_on_best(self, rs_result):
        rs, result = rs_result
        reference = evaluate(rs.query, rs.instance)
        assert execute(result.best.query, rs.instance).results == reference

    def test_plans_sorted_by_cost(self, rs_result):
        _, result = rs_result
        costs = [p.cost for p in result.plans]
        assert costs == sorted(costs)

    def test_report_renders(self, rs_result):
        _, result = rs_result
        text = result.report()
        assert "universal plan" in text
        assert "->" in text


class TestHashJoinRewriting:
    """Section 2: 'we can rewrite join queries into queries that
    correspond to hash-join plans, provided that the hash table exists, in
    the same way we rewrite queries into plans that use indexes.'"""

    def test_hash_table_plan_discovered(self):
        from repro.model.instance import Instance
        from repro.model.values import Row
        from repro.optimizer.statistics import Statistics
        from repro.physical.hashtable import HashTable
        from repro.query.parser import parse_query
        from repro.query.evaluator import evaluate

        instance = Instance(
            {
                "R": frozenset(Row(A=i, B=i % 4) for i in range(20)),
                "S": frozenset(Row(B=i % 4, C=i) for i in range(20)),
            }
        )
        table = HashTable("H", "S", "B")
        table.install_transient(instance)
        query = parse_query(
            "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B"
        )
        opt = Optimizer(
            table.constraints(),
            physical_names={"R", "S", "H"},
            statistics=Statistics.from_instance(instance),
        )
        result = opt.optimize(query)
        hash_plans = [
            p for p in result.plans if "H" in p.query.schema_names()
        ]
        assert hash_plans, [str(p) for p in result.plans]
        reference = evaluate(query, instance)
        for plan in hash_plans:
            assert evaluate(plan.query, instance) == reference


class TestOptimizerConfiguration:
    def test_physical_filter(self, rs_result):
        rs, result = rs_result
        for plan in result.physical_plans():
            assert plan.query.schema_names() <= rs.physical_names

    def test_no_physical_names_means_all_physical(self, rabc_result):
        rabc, _ = rabc_result
        opt = Optimizer(rabc.constraints, statistics=rabc.statistics)
        result = opt.optimize(rabc.query)
        assert all(p.physical_only for p in result.plans)

    def test_reorder_disabled(self, rabc_result):
        rabc, _ = rabc_result
        opt = Optimizer(
            rabc.constraints,
            physical_names=rabc.physical_names,
            statistics=rabc.statistics,
            reorder=False,
        )
        result = opt.optimize(rabc.query)
        assert result.best is not None
