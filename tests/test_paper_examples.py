"""End-to-end reproduction of the paper's worked examples (E1, E2).

These are the flagship integration tests: the ProjDept scenario of
sections 1–3 must yield the paper's plans P1–P4 (in the forms discussed in
EXPERIMENTS.md), the displayed universal plan, and agreeing results on
generated instances.
"""

import pytest

from repro.chase.chase import chase
from repro.chase.containment import is_equivalent
from repro.exec.engine import execute
from repro.optimizer.optimizer import Optimizer
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.paths import NFLookup


@pytest.fixture(scope="module")
def optimized(request):
    wl = request.getfixturevalue("projdept")
    # P1-P4 must *all* be found: that is a completeness property, so these
    # flagship tests run the full enumeration (the pruned default may drop
    # dominated plans).
    opt = Optimizer(
        wl.constraints,
        physical_names=wl.physical_names,
        statistics=wl.statistics,
        strategy="full",
    )
    return wl, opt.optimize(wl.query)


class TestUniversalPlan:
    def test_mentions_every_access_structure(self, optimized):
        wl, result = optimized
        names = result.universal_plan.schema_names()
        assert {"depts", "Proj", "Dept", "I", "SI", "JI"} <= names

    def test_original_bindings_retained(self, optimized):
        """The universal plan extends Q — chase only adds loops/conditions."""

        wl, result = optimized
        u_vars = set(result.universal_plan.binding_vars())
        assert set(wl.query.binding_vars()) <= u_vars

    def test_universal_plan_equivalent_to_query(self, optimized):
        wl, result = optimized
        assert evaluate(result.universal_plan, wl.instance) == evaluate(
            wl.query, wl.instance
        )

    def test_chase_trace_names_constraints(self, optimized):
        _, result = optimized
        used = {s.constraint for s in result.chase_steps}
        assert "JI_cv" in used
        assert any(name.startswith("I_pi") for name in used)
        assert any(name.startswith("SI_si") for name in used)


class TestPaperPlans:
    """P1–P4 of section 1 (see EXPERIMENTS.md E1 for the exact forms)."""

    def test_p2_direct_scan_found(self, optimized):
        wl, result = optimized
        p2 = parse_query(
            "select struct(PN = p.PName, PB = p.Budg, DN = p.PDept) "
            'from Proj p where "CitiBank" = p.CustName'
        )
        keys = {p.query.canonical_key() for p in result.plans}
        assert p2.canonical_key() in keys

    def test_p3_nonfailing_secondary_index_found(self, optimized):
        wl, result = optimized
        p3 = [
            p
            for p in result.plans
            if any(
                isinstance(b.source, NFLookup)
                and "SI" in str(b.source)
                and "CitiBank" in str(b.source)
                for b in p.query.bindings
            )
        ]
        assert p3

    def test_p4_join_index_plan_found(self, optimized):
        wl, result = optimized
        p4 = [
            p
            for p in result.plans
            if "JI" in p.query.schema_names()
            and len(p.query.bindings) == 1
        ]
        assert p4
        # guard-free primary-index lookups proven safe by the chase
        assert any("I[" in str(p.query) for p in p4)

    def test_p1_class_dictionary_plan_found(self, optimized):
        wl, result = optimized
        p1ish = [
            p
            for p in result.plans
            if "Dept" in p.query.schema_names()
            and any("dom(Dept)" in str(b.source) for b in p.query.bindings)
        ]
        assert p1ish

    def test_all_plans_equivalent_under_constraints(self, optimized):
        """Chase-based equivalence applies to the PC (unrefined) plans;
        refined plans use non-failing lookups, which sit outside the PC
        fragment (their soundness is a property of the rewrite itself and
        is checked by evaluation below and in test_refine.py)."""

        wl, result = optimized
        unrefined = [p for p in result.plans if not p.refined]
        assert unrefined
        for plan in unrefined[:4]:
            assert is_equivalent(plan.query, wl.query, wl.constraints), str(plan)

    def test_all_plans_agree_on_instance(self, optimized):
        wl, result = optimized
        reference = evaluate(wl.query, wl.instance)
        for plan in result.plans:
            assert evaluate(plan.query, wl.instance) == reference, str(plan)

    def test_executor_agrees_on_physical_plans(self, optimized):
        wl, result = optimized
        reference = evaluate(wl.query, wl.instance)
        for plan in result.physical_plans():
            assert execute(plan.query, wl.instance).results == reference, str(plan)

    def test_best_plan_is_selective_index(self, optimized):
        """With selective CitiBank share, P3 (refined) must win (section 1:
        'depending on the cost model ... either one of P2, P3, P4 may be
        cheaper'; our statistics make SI the winner)."""

        _, result = optimized
        assert result.best.refined
        assert "SI{" in str(result.best.query)


class TestP1WithoutExtraStructures:
    """Chasing with the class encoding only (no I/SI/JI) produces exactly
    the paper's P1 — with the full structure set P1 is non-minimal because
    the primary index subsumes the Proj scan (EXPERIMENTS.md E1)."""

    @staticmethod
    def _shape(query):
        """Order- and name-insensitive plan fingerprint: the multiset of
        binding-source shapes (variables anonymized) plus binding count."""

        from repro.query.paths import Var as _Var

        anon = {v: _Var("?") for v in query.binding_vars()}
        sources = sorted(
            str(__import__("repro.query.paths", fromlist=["substitute"]).substitute(b.source, anon))
            for b in query.bindings
        )
        return (tuple(sources), len(query.bindings))

    def test_p1_exact_form(self, projdept):
        deps = (
            projdept.class_encoding.constraints()
        )
        opt = Optimizer(deps, physical_names=projdept.physical_names, reorder=False)
        result = opt.optimize(projdept.query)
        p1 = parse_query(
            "select struct(PN = s, PB = p.Budg, DN = d.DName) "
            "from dom(Dept) d, d.DProjs s, Proj p "
            'where s = p.PName and "CitiBank" = p.CustName'
        )
        matches = [
            p
            for p in result.plans
            if self._shape(p.query) == self._shape(p1)
        ]
        assert matches, [str(p.query) for p in result.plans]
        assert is_equivalent(matches[0].query, p1, deps)

    def test_reference_p1_equivalent(self, projdept):
        deps = projdept.class_encoding.constraints()
        assert is_equivalent(
            projdept.reference_plans["P1"], projdept.query, deps
        )
