"""Parameterized query templates (``$x`` markers) end to end.

Covers the whole binding-marker stack of this PR: tokenizer/parser
support and literal normalization, the :class:`~repro.query.paths.Param`
leaf and its canonical/template keying, ``bind_params`` and its errors,
unbound-parameter guards at every execution entry point, the
:class:`~repro.api.database.PreparedQuery` template path (one plan-cache
miss serving many bindings, with counters proving it), the
selectivity-skew replan guard, per-binding semantic-cache entries, the
``line:column`` syntax-error rendering, and a property test pinning
``prepare(template).run(**b)`` ≡ cold execution across randomized
bindings and mid-sequence mutations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CacheConfig,
    Database,
    Instance,
    Param,
    ParameterBindingError,
    QuerySyntaxError,
    ReproError,
    Row,
    evaluate,
    parse_query,
)
from repro.errors import QueryExecutionError
from repro.physical.indexes import SecondaryIndex
from repro.query import paths as P


def rs_database(**kwargs) -> Database:
    return Database.from_workload(
        "rs", n_r=60, n_s=60, b_values=30, seed=5, **kwargs
    )


TEMPLATE_C = (
    "select struct(A = r.A, C = s.C) "
    "from R r, S s where r.B = s.B and s.C = $c"
)


# -- literal normalization (satellite: parser.py Const coercion) --------------


class TestLiteralNormalization:
    def test_whole_float_and_int_are_one_const(self):
        assert P.Const(1.0) is P.Const(1)
        assert type(P.Const(1.0).value) is int
        assert P.Const(1.5) is not P.Const(1)

    def test_bools_stay_distinct_from_ints(self):
        assert P.Const(True) is not P.Const(1)
        assert P.Const(False) is not P.Const(0)

    def test_parsed_queries_share_canonical_keys(self):
        q_int = parse_query("select r.A from R r where r.A = 1")
        q_float = parse_query("select r.A from R r where r.A = 1.0")
        assert q_int.canonical_key() == q_float.canonical_key()
        q_frac = parse_query("select r.A from R r where r.A = 1.5")
        assert q_frac.canonical_key() != q_int.canonical_key()

    def test_negative_literals_parse(self):
        query = parse_query("select r.A from R r where r.A = -2 and r.B = -1.5")
        consts = [
            term.value
            for path in query.all_paths()
            for term in P.subterms(path)
            if isinstance(term, P.Const)
        ]
        assert -2 in consts and -1.5 in consts

    def test_normalized_literal_evaluates(self):
        instance = Instance({"R": frozenset({Row(A=1, B=2)})})
        q_float = parse_query("select r.A from R r where r.A = 1.0")
        assert evaluate(q_float, instance) == frozenset({1})


# -- syntax errors carry line:column + caret (satellite) ----------------------


class TestSyntaxErrorLocation:
    def test_line_column_and_caret(self):
        text = "select struct(A = r.A)\nfrom R r\nwhere r.A = = 2"
        with pytest.raises(QuerySyntaxError) as exc_info:
            parse_query(text)
        err = exc_info.value
        assert err.line == 3
        assert err.column >= 1
        rendered = str(err)
        assert f"{err.line}:{err.column}:" in rendered
        assert "where r.A = = 2" in rendered
        assert "^" in rendered
        # the caret points inside the offending line
        caret_line = rendered.splitlines()[-1]
        assert caret_line.strip() == "^"

    def test_raw_offset_preserved(self):
        with pytest.raises(QuerySyntaxError) as exc_info:
            parse_query("select ?? from R r")
        assert exc_info.value.position >= 0

    def test_errors_without_source_render_plain(self):
        err = QuerySyntaxError("boom", position=3)
        assert str(err) == "boom"
        err.with_source("0123456")
        assert str(err).startswith("1:4: boom")


# -- Param leaves and template keys -------------------------------------------


class TestParamAst:
    def test_parse_and_intern(self):
        query = parse_query(TEMPLATE_C)
        assert query.has_params()
        assert query.param_names() == ("c",)
        assert Param("c") is Param("c")
        assert str(Param("c")) == "$c"

    def test_duplicate_markers_unify(self):
        query = parse_query(
            "select struct(A = r.A) from R r, S s "
            "where r.A = $x and s.C = $x and r.B = s.B"
        )
        assert query.param_names() == ("x",)

    def test_template_key_is_alpha_invariant(self):
        q_x = parse_query("select r.A from R r where r.A = $x")
        q_y = parse_query("select r.A from R r where r.A = $y")
        assert q_x.template_key() == q_y.template_key()
        assert q_x.canonical_key() != q_y.canonical_key()

    def test_shared_marker_and_distinct_markers_differ(self):
        q_shared = parse_query(
            "select struct(A = r.A) from R r, S s "
            "where r.A = $x and s.C = $x and r.B = s.B"
        )
        q_distinct = parse_query(
            "select struct(A = r.A) from R r, S s "
            "where r.A = $x and s.C = $y and r.B = s.B"
        )
        assert q_shared.template_key() != q_distinct.template_key()

    def test_template_key_of_plain_query_is_canonical_key(self):
        query = parse_query("select r.A from R r where r.A = 1")
        assert query.template_key() == query.canonical_key()

    def test_param_may_collide_with_variable_name(self):
        query = parse_query("select struct(A = x.A) from R x where x.A = $x")
        assert query.param_names() == ("x",)
        bound = query.bind_params({"x": 7})
        assert not bound.has_params()
        instance = Instance({"R": frozenset({Row(A=7), Row(A=8)})})
        assert evaluate(bound, instance) == frozenset({Row(A=7)})

    def test_param_in_output_clause(self):
        query = parse_query(
            "select struct(A = r.A, Tag = $tag) from R r where r.B = $b"
        )
        # first-occurrence order walks bindings, then conditions, then output
        assert query.param_names() == ("b", "tag")
        bound = query.bind_params({"tag": "hit", "b": 2})
        instance = Instance({"R": frozenset({Row(A=1, B=2), Row(A=3, B=4)})})
        results = evaluate(bound, instance)
        assert results == frozenset({Row(A=1, Tag="hit")})


class TestBindParams:
    def test_binds_constants(self):
        query = parse_query(TEMPLATE_C)
        bound = query.bind_params({"c": 3})
        assert not bound.has_params()
        assert bound.canonical_key() == parse_query(
            TEMPLATE_C.replace("$c", "3")
        ).canonical_key()

    def test_missing_binding_raises(self):
        query = parse_query(TEMPLATE_C)
        with pytest.raises(ParameterBindingError, match=r"unbound.*\$c"):
            query.bind_params({})

    def test_unknown_binding_raises(self):
        query = parse_query(TEMPLATE_C)
        with pytest.raises(ParameterBindingError, match=r"unknown.*\$d"):
            query.bind_params({"c": 1, "d": 2})

    def test_unbound_param_refuses_to_evaluate(self):
        query = parse_query(TEMPLATE_C)
        instance = Instance(
            {"R": frozenset({Row(A=1, B=2)}), "S": frozenset({Row(B=2, C=3)})}
        )
        with pytest.raises(QueryExecutionError, match=r"unbound parameter \$c"):
            evaluate(query, instance)


# -- canonicalization pins (satellite 3: binding-order sensitivity) -----------


class TestCanonicalBindingOrderPin:
    def test_from_clause_order_changes_the_canonical_key(self):
        """Pinned limitation (see ROADMAP "Known non-guarantees"):
        ``canonical()`` renames variables by binding order, so permuting
        the from clause changes the canonical key and such variants do
        not share plan-cache entries.  This test documents the current
        behavior; making canonicalization order-insensitive would have to
        preserve chase/containment semantics and the golden plans."""

        q_rs = parse_query(
            "select struct(A = r.A) from R r, S s where r.B = s.B"
        )
        q_sr = parse_query(
            "select struct(A = r.A) from S s, R r where r.B = s.B"
        )
        assert q_rs.canonical_key() != q_sr.canonical_key()
        # semantically they are the same query: same answers everywhere
        instance = Instance(
            {"R": frozenset({Row(A=1, B=2)}), "S": frozenset({Row(B=2, C=3)})}
        )
        assert evaluate(q_rs, instance) == evaluate(q_sr, instance)


# -- the PreparedQuery template path ------------------------------------------


class TestPreparedTemplates:
    def test_one_miss_serves_many_bindings(self):
        db = rs_database()
        template = parse_query(TEMPLATE_C)
        prepared = db.prepare(template)
        assert prepared.params == ("c",)

        bindings = [3, 7, 11, 3]
        for c in bindings:
            got = prepared.run(c=c).results
            cold = evaluate(template.bind_params({"c": c}), db.instance)
            assert got == cold
        info = db.plan_cache_info()
        assert info.misses == 1  # the eager prepare, and nothing else
        assert info.hits == len(bindings)  # every run() probed and hit
        db.close()

    def test_alpha_variant_templates_share_the_entry(self):
        db = rs_database()
        prepared_c = db.prepare(parse_query(TEMPLATE_C))
        prepared_z = db.prepare(parse_query(TEMPLATE_C.replace("$c", "$z")))
        assert db.plan_cache_info().misses == 1
        assert prepared_c.run(c=3).results == prepared_z.run(z=3).results
        db.close()

    def test_run_validates_binding_names(self):
        db = rs_database()
        prepared = db.prepare(parse_query(TEMPLATE_C))
        with pytest.raises(ParameterBindingError, match=r"unbound.*\$c"):
            prepared.run()
        with pytest.raises(ParameterBindingError, match=r"unknown.*\$d"):
            prepared.run(c=1, d=2)
        plain = db.prepare(parse_query("select r.A from R r where r.A = 1"))
        with pytest.raises(ParameterBindingError, match="no .-markers"):
            plain.run(c=1)
        db.close()

    def test_execute_routes_params_and_guards_templates(self):
        db = rs_database()
        template = parse_query(TEMPLATE_C)
        got = db.execute(template, params={"c": 3}).results
        assert got == evaluate(template.bind_params({"c": 3}), db.instance)
        with pytest.raises(ParameterBindingError, match=r"unbound.*\$c"):
            db.execute(template)
        with pytest.raises(ParameterBindingError, match=r"unbound"):
            db.execute_plan(db.optimize(template).best)
        db.close()

    def test_mutation_reoptimizes_then_serves_fresh_answers(self):
        db = rs_database()
        template = parse_query(TEMPLATE_C)
        prepared = db.prepare(template)
        before = prepared.run(c=3).results
        assert before == evaluate(template.bind_params({"c": 3}), db.instance)

        # grow S mid-sequence: the entry drops, the next run re-optimizes
        new_s = frozenset(set(db.instance["S"]) | {Row(B=0, C=3)})
        db.instance["S"] = new_s
        after = prepared.run(c=3).results
        assert after == evaluate(template.bind_params({"c": 3}), db.instance)
        assert db.plan_cache_info().misses == 2  # prepare + post-mutation
        db.close()

    def test_explain_keeps_the_markers(self):
        db = rs_database()
        prepared = db.prepare(parse_query(TEMPLATE_C))
        assert "$c" in prepared.explain()
        db.close()


# -- the selectivity-skew guard -----------------------------------------------


def skewed_database(**config_kwargs) -> Database:
    """40 R rows: A=1 thirty times (the skewed value), A=2..11 once each.

    NDV(R.A) = 11, so the uniform estimate prices every binding at ~1/11
    of the extent; A=1 actually selects 75% (ratio ~8.25, over the
    default threshold of 8) while A=2 selects 2.5% (ratio ~0.28, inside
    the band).
    """

    rows = {Row(A=1, N=i) for i in range(30)}
    rows |= {Row(A=a, N=100 + a) for a in range(2, 12)}
    instance = Instance({"R": frozenset(rows)})
    return Database(
        instance=instance,
        cache_config=CacheConfig(**config_kwargs) if config_kwargs else None,
    )


SKEW_TEMPLATE = "select struct(N = r.N) from R r where r.A = $x"


class TestSkewGuard:
    def test_skewed_binding_gets_a_variant_entry(self):
        db = skewed_database()
        template = parse_query(SKEW_TEMPLATE)
        prepared = db.prepare(template)  # miss 1: the base template entry

        common = prepared.run(x=2).results  # in-band: base entry hit
        assert common == evaluate(template.bind_params({"x": 2}), db.instance)
        assert db.plan_cache_info().misses == 1

        skewed = prepared.run(x=1).results  # skewed: variant entry miss
        assert skewed == evaluate(template.bind_params({"x": 1}), db.instance)
        info = db.plan_cache_info()
        assert info.misses == 2
        assert info.size == 2  # base entry + one #skew: variant

        prepared.run(x=1)  # same skew bucket: the variant entry hits
        assert db.plan_cache_info().misses == 2
        db.close()

    def test_guard_disabled_never_replans(self):
        db = skewed_database(skew_replan_ratio=None)
        template = parse_query(SKEW_TEMPLATE)
        prepared = db.prepare(template)
        for x in (1, 2, 1, 5):
            got = prepared.run(x=x).results
            assert got == evaluate(template.bind_params({"x": x}), db.instance)
        info = db.plan_cache_info()
        assert info.misses == 1
        assert info.size == 1
        db.close()

    def test_mutation_clears_the_frequency_cache(self):
        db = skewed_database()
        db._value_counts("R", "A")
        assert ("R", "A") in db._freq_cache
        db.instance["R"] = frozenset({Row(A=1, N=0)})
        assert not db._freq_cache
        db.close()


# -- per-binding semantic-cache entries ---------------------------------------


class TestSessionTemplates:
    def test_exact_entries_are_keyed_per_binding(self):
        db = rs_database()
        session = db.session(hybrid=False)
        template = parse_query(TEMPLATE_C)

        first = session.run(template, params={"c": 3})
        assert first.source == "cold"
        repeat = session.run(template, params={"c": 3})
        assert repeat.source == "exact"
        assert repeat.results == first.results
        other = session.run(template, params={"c": 7})
        assert other.source != "exact"  # a different binding, its own entry
        assert other.results == evaluate(
            template.bind_params({"c": 7}), db.instance
        )
        session.close()
        db.close()

    def test_unbound_template_is_rejected(self):
        db = rs_database()
        session = db.session()
        with pytest.raises(ParameterBindingError, match=r"unbound.*\$c"):
            session.run(parse_query(TEMPLATE_C))
        session.close()
        db.close()

    def test_cache_register_rejects_templates(self):
        db = rs_database()
        session = db.session()
        rejected_before = session.cache.stats.rejected
        assert session.cache.register(parse_query(TEMPLATE_C)) is None
        assert session.cache.stats.rejected == rejected_before + 1
        session.close()
        db.close()


# -- property: prepared templates ≡ cold execution under mutation -------------


@st.composite
def binding_scripts(draw):
    """A small R/S instance (with a secondary index, so the backchase has
    real plan choices) plus a run/mutate script over one template."""

    def rows_r():
        return frozenset(
            Row(A=draw(st.integers(0, 3)), B=draw(st.integers(0, 3)))
            for _ in range(draw(st.integers(1, 8)))
        )

    r = rows_r()
    s = frozenset(
        Row(B=draw(st.integers(0, 3)), C=draw(st.integers(0, 3)))
        for _ in range(draw(st.integers(1, 8)))
    )
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("run"),
                    st.integers(0, 4),
                    st.integers(0, 4),
                ),
                st.tuples(st.just("mutate"), st.just(None), st.just(None)),
            ),
            min_size=1,
            max_size=6,
        )
    )
    mutations = [rows_r() for _ in steps]
    return r, s, steps, mutations


@given(binding_scripts())
@settings(max_examples=25, deadline=None)
def test_prepared_template_matches_cold_execution(script):
    r, s, steps, mutations = script
    instance = Instance({"R": r, "S": s})
    index = SecondaryIndex("IRA", "R", "A")
    index.install(instance, None)
    db = Database(
        instance=instance,
        constraints=index.constraints(),
        physical_names=frozenset({"R", "S", "IRA"}),
    )
    template = parse_query(
        "select struct(A = r.A, C = s.C) from R r, S s "
        "where r.B = s.B and r.A = $a and s.C = $c"
    )
    prepared = db.prepare(template)
    for i, (op, a, c) in enumerate(steps):
        if op == "mutate":
            new_r = mutations[i]
            db.instance["R"] = new_r
            SecondaryIndex("IRA", "R", "A").install(db.instance, None)
        else:
            got = prepared.run(a=a, c=c).results
            cold = evaluate(
                template.bind_params({"a": a, "c": c}), db.instance
            )
            assert got == cold, (a, c)
    db.close()
