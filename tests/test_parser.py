"""Unit tests for the OQL-ish parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.ast import StructOutput
from repro.query.parser import parse_constraint, parse_path, parse_query
from repro.query.paths import (
    Attr,
    Const,
    Dom,
    Lookup,
    NFLookup,
    SName,
    Var,
)


class TestQueryParsing:
    def test_paper_query(self):
        query = parse_query(
            'select struct(PN = s, PB = p.Budg, DN = d.DName) '
            'from depts d, d.DProjs s, Proj p '
            'where s = p.PName and p.CustName = "CitiBank"'
        )
        assert query.binding_vars() == ("d", "s", "p")
        assert query.binding_of("s").source == Attr(Var("d"), "DProjs")
        assert len(query.conditions) == 2
        assert isinstance(query.output, StructOutput)

    def test_in_binding_style(self):
        a = parse_query("select struct(A = p.A) from p in Proj")
        b = parse_query("select struct(A = p.A) from Proj p")
        assert a.canonical_key() == b.canonical_key()

    def test_path_output(self):
        query = parse_query("select r.C from R r")
        assert str(query.output) == "r.C"

    def test_dom_and_lookup(self):
        query = parse_query(
            "select struct(A = t.A) from dom(SI) k, SI[k] t where k = 5"
        )
        assert query.binding_of("k").source == Dom(SName("SI"))
        assert query.binding_of("t").source == Lookup(SName("SI"), Var("k"))

    def test_nonfailing_lookup(self):
        query = parse_query('select struct(A = t.A) from SI{"x"} t')
        assert query.binding_of("t").source == NFLookup(SName("SI"), Const("x"))

    def test_constants(self):
        query = parse_query(
            'select struct(A = r.A) from R r '
            'where r.S = "str" and r.I = 42 and r.F = 4.5 and r.B = true'
        )
        consts = {c.right.value for c in query.conditions if isinstance(c.right, Const)}
        assert consts == {"str", 42, 4.5, True}

    def test_select_referencing_later_bindings(self):
        # The output mentions variables bound in the from clause.
        query = parse_query("select struct(X = s.B) from R r, S s")
        assert "s.B" in str(query.output)

    def test_distinct_keyword_accepted(self):
        query = parse_query("select distinct struct(A = r.A) from R r")
        assert query.binding_vars() == ("r",)


class TestQueryErrors:
    def test_missing_from(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select struct(A = x.A)")

    def test_duplicate_variable(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select struct(A = r.A) from R r, S r")

    def test_garbage_trailing(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select struct(A = r.A) from R r banana loose")

    def test_bad_character(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select struct(A = r.A) from R r where r.A = @")

    def test_unclosed_bracket(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select struct(A = t.A) from dom(SI k, SI[k] t")


class TestPathParsing:
    def test_parse_path_with_scope(self):
        path = parse_path("Dept[d].DName", scope={"d"})
        assert path == Attr(Lookup(SName("Dept"), Var("d")), "DName")

    def test_parse_path_without_scope_makes_snames(self):
        path = parse_path("R.A")
        assert path == Attr(SName("R"), "A")

    def test_parenthesized(self):
        assert parse_path("(R).A") == Attr(SName("R"), "A")


class TestConstraintParsing:
    def test_tgd(self):
        dep = parse_constraint(
            "forall (p in Proj) -> exists (i in dom(I)) i = p.PName and I[i] = p",
            "PI1",
        )
        assert dep.name == "PI1"
        assert dep.is_tgd()
        assert len(dep.conclusion_conditions) == 2

    def test_egd(self):
        dep = parse_constraint(
            "forall (d in depts, d2 in depts) where d.DName = d2.DName -> d = d2",
            "KEY",
        )
        assert dep.is_egd()
        assert len(dep.premise_conditions) == 1

    def test_nonemptiness(self):
        dep = parse_constraint(
            "forall (k in dom(SI)) -> exists (t in SI[k]) true", "SI3"
        )
        assert dep.is_tgd()
        assert dep.conclusion_conditions == ()

    def test_conclusion_where_optional(self):
        a = parse_constraint("forall (r in R) -> exists (v in V) v.A = r.A")
        b = parse_constraint("forall (r in R) -> exists (v in V) where v.A = r.A")
        assert a.conclusion_conditions == b.conclusion_conditions

    def test_missing_arrow(self):
        with pytest.raises(QuerySyntaxError):
            parse_constraint("forall (r in R) exists (v in V) v.A = r.A")


class TestRoundTrip:
    def test_query_str_reparses(self):
        text = (
            "select struct(PN = s, PB = p.Budg) from depts d, d.DProjs s, Proj p "
            'where s = p.PName and p.CustName = "CitiBank"'
        )
        query = parse_query(text)
        again = parse_query(str(query))
        assert again.canonical_key() == query.canonical_key()

    def test_plan_with_nflookup_reparses(self):
        text = 'select struct(PN = p.PName) from SI{"CitiBank"} p'
        query = parse_query(text)
        assert parse_query(str(query)).canonical_key() == query.canonical_key()
