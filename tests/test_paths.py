"""Unit tests for path expressions."""

from repro.query import paths as P
from repro.query.paths import (
    Attr,
    Const,
    Dom,
    Lookup,
    NFLookup,
    Path,
    SName,
    Var,
)


class TestConstructionAndInterning:
    def test_interning_identity(self):
        assert Var("x") is Var("x")
        assert Attr(Var("x"), "A") is Attr(Var("x"), "A")
        assert Lookup(SName("M"), Var("k")) is Lookup(SName("M"), Var("k"))

    def test_distinct_kinds_not_equal(self):
        assert Var("R") != SName("R")
        assert Const(1) != Const(True)  # bool/int distinction

    def test_rendering(self):
        path = Attr(Lookup(SName("Dept"), Var("d")), "DName")
        assert str(path) == "Dept[d].DName"
        assert str(Dom(SName("I"))) == "dom(I)"
        assert str(NFLookup(SName("SI"), Const("CitiBank"))) == 'SI{"CitiBank"}'
        assert str(Const("x")) == '"x"'
        assert str(Const(5)) == "5"


class TestStructure:
    def test_children_and_rebuild(self):
        path = Lookup(SName("M"), Var("k"))
        kids = P.children(path)
        assert kids == (SName("M"), Var("k"))
        rebuilt = P.rebuild(path, (SName("N"), Var("k")))
        assert rebuilt == Lookup(SName("N"), Var("k"))

    def test_subterms_postorder(self):
        path = Attr(Var("x"), "A")
        assert list(P.subterms(path)) == [Var("x"), path]

    def test_free_vars(self):
        path = Lookup(SName("M"), Attr(Var("k"), "A"))
        assert P.free_vars(path) == frozenset({"k"})
        assert P.free_vars(SName("R")) == frozenset()

    def test_schema_names(self):
        path = Lookup(SName("M"), Attr(Var("k"), "A"))
        assert P.schema_names(path) == frozenset({"M"})

    def test_size_and_depth(self):
        path = Attr(Attr(Var("x"), "A"), "B")
        assert P.size(path) == 3
        assert P.depth(path) == 3


class TestSubstitute:
    def test_substitute_var(self):
        path = Attr(Var("x"), "A")
        result = P.substitute(path, {"x": Var("y")})
        assert result == Attr(Var("y"), "A")

    def test_substitute_no_hit_returns_same_object(self):
        path = Attr(Var("x"), "A")
        assert P.substitute(path, {"z": Var("y")}) is path

    def test_substitute_into_lookup_key(self):
        path = Lookup(SName("M"), Var("k"))
        result = P.substitute(path, {"k": Const(5)})
        assert result == Lookup(SName("M"), Const(5))

    def test_substitute_with_composite(self):
        path = Attr(Var("x"), "A")
        result = P.substitute(path, {"x": Lookup(SName("D"), Var("o"))})
        assert str(result) == "D[o].A"


class TestTransform:
    def test_transform_bottom_up(self):
        path = Attr(Var("x"), "A")

        def rename(p: Path) -> Path:
            if isinstance(p, Var):
                return Var(p.name.upper())
            return p

        assert P.transform(path, rename) == Attr(Var("X"), "A")

    def test_mentions_var(self):
        assert P.mentions_var(Attr(Var("x"), "A"), "x")
        assert not P.mentions_var(SName("R"), "x")


class TestOrdering:
    def test_sort_key_smaller_terms_first(self):
        small = Var("z")
        big = Attr(Attr(Var("a"), "X"), "Y")
        assert sorted([big, small], key=P.path_sort_key)[0] is small

    def test_convenience_constructors(self):
        assert P.A(P.V("x"), "A", "B") == Attr(Attr(Var("x"), "A"), "B")
        assert P.N("R") == SName("R")
        assert P.C(1) == Const(1)
