"""Unit tests for primary/secondary index structures."""

import pytest

from repro.constraints.checker import check_all, holds
from repro.errors import InstanceError
from repro.model.instance import Instance
from repro.model.schema import Schema
from repro.model.types import DictType, INT, STRING, SetType, relation
from repro.model.values import DictValue, Row
from repro.physical.indexes import PrimaryIndex, SecondaryIndex


@pytest.fixture
def instance():
    return Instance(
        {
            "Proj": frozenset(
                {
                    Row(PName="P1", CustName="CitiBank"),
                    Row(PName="P2", CustName="CitiBank"),
                    Row(PName="P3", CustName="Acme"),
                }
            )
        }
    )


class TestPrimaryIndex:
    def test_materialize(self, instance):
        idx = PrimaryIndex("I", "Proj", "PName")
        value = idx.materialize(instance)
        assert isinstance(value, DictValue)
        assert value["P1"]["CustName"] == "CitiBank"
        assert len(value) == 3

    def test_duplicate_key_rejected(self, instance):
        idx = PrimaryIndex("I", "Proj", "CustName")  # CustName is not a key
        with pytest.raises(InstanceError):
            idx.materialize(instance)

    def test_constraints_hold_on_materialization(self, instance):
        idx = PrimaryIndex("I", "Proj", "PName")
        idx.install(instance)
        assert check_all(idx.constraints(), instance) == []

    def test_constraints_fail_on_stale_index(self, instance):
        idx = PrimaryIndex("I", "Proj", "PName")
        idx.install(instance)
        instance["Proj"] = instance["Proj"] | {Row(PName="P9", CustName="New")}
        failures = check_all(idx.constraints(), instance)
        assert [name for name, _ in failures] == ["I_pi1"]

    def test_schema_type(self, instance):
        schema = Schema("t").add("Proj", relation(PName=STRING, CustName=STRING))
        idx = PrimaryIndex("I", "Proj", "PName")
        idx.install(instance, schema)
        ty = schema.type_of("I")
        assert isinstance(ty, DictType)
        assert ty.key == STRING


class TestSecondaryIndex:
    def test_materialize_groups(self, instance):
        idx = SecondaryIndex("SI", "Proj", "CustName")
        value = idx.materialize(instance)
        assert len(value["CitiBank"]) == 2
        assert len(value["Acme"]) == 1

    def test_constraints_hold(self, instance):
        idx = SecondaryIndex("SI", "Proj", "CustName")
        idx.install(instance)
        assert check_all(idx.constraints(), instance) == []

    def test_nonemptiness_constraint(self, instance):
        idx = SecondaryIndex("SI", "Proj", "CustName")
        idx.install(instance)
        # manually sabotage with an empty bucket
        data = dict(instance["SI"].items())
        data["Ghost"] = frozenset()
        instance["SI"] = DictValue(data)
        failures = check_all(idx.constraints(), instance)
        assert "SI_si3" in [name for name, _ in failures]

    def test_si2_fails_on_foreign_rows(self, instance):
        idx = SecondaryIndex("SI", "Proj", "CustName")
        idx.install(instance)
        data = dict(instance["SI"].items())
        data["Acme"] = data["Acme"] | {Row(PName="P99", CustName="Acme")}
        instance["SI"] = DictValue(data)
        failures = check_all(idx.constraints(), instance)
        assert "SI_si2" in [name for name, _ in failures]

    def test_schema_type(self, instance):
        schema = Schema("t").add("Proj", relation(PName=STRING, CustName=STRING))
        idx = SecondaryIndex("SI", "Proj", "CustName")
        idx.install(instance, schema)
        ty = schema.type_of("SI")
        assert isinstance(ty.value, SetType)
