"""Unit tests for views, classes, gmaps, join indexes, ASRs, hash tables."""

import pytest

from repro.constraints.checker import check_all, holds
from repro.errors import ConstraintError
from repro.model.instance import Instance
from repro.model.schema import Schema
from repro.model.types import INT, STRING, SetType, relation, struct
from repro.model.values import DictValue, Oid, Row
from repro.physical.asr import AccessSupportRelation, PathStep
from repro.physical.classes import ClassEncoding
from repro.physical.dictionary import (
    dict_comprehension,
    from_pairs_grouped,
    from_pairs_unique,
    index_rows,
    invert_unique,
)
from repro.physical.gmap import GMap
from repro.physical.hashtable import HashTable
from repro.physical.joinindex import JoinIndex
from repro.physical.views import MaterializedView
from repro.query.ast import StructOutput
from repro.query.parser import parse_path, parse_query
from repro.query.paths import Attr, Var


@pytest.fixture
def rs_instance():
    return Instance(
        {
            "R": frozenset({Row(K=1, A=10, B=5), Row(K=2, A=20, B=6)}),
            "S": frozenset({Row(K=7, B=5, C="x"), Row(K=8, B=5, C="y")}),
        }
    )


class TestMaterializedView:
    def test_materialize_and_constraints(self, rs_instance):
        view = MaterializedView(
            "V",
            parse_query(
                "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B"
            ),
        )
        value = view.install(rs_instance)
        assert value == frozenset({Row(A=10, C="x"), Row(A=10, C="y")})
        assert check_all(view.constraints(), rs_instance) == []

    def test_constraint_violation_detected(self, rs_instance):
        view = MaterializedView(
            "V",
            parse_query(
                "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B"
            ),
        )
        view.install(rs_instance)
        rs_instance["V"] = rs_instance["V"] | {Row(A=999, C="zz")}
        failures = check_all(view.constraints(), rs_instance)
        assert [name for name, _ in failures] == ["V_cv'"]

    def test_refresh(self, rs_instance):
        view = MaterializedView(
            "V", parse_query("select struct(A = r.A) from R r")
        )
        view.install(rs_instance)
        rs_instance["R"] = rs_instance["R"] | {Row(K=3, A=30, B=9)}
        view.refresh(rs_instance)
        assert Row(A=30) in rs_instance["V"]

    def test_install_fires_mutation_listeners(self, rs_instance):
        # Database.apply_design leans on this: installing a view is an
        # instance mutation, so plan-cache/semcache invalidation sees it.
        seen = []
        rs_instance.subscribe(seen.append)
        view = MaterializedView(
            "V", parse_query("select struct(A = r.A) from R r")
        )
        view.install(rs_instance)
        assert seen == ["V"]
        view.refresh(rs_instance)
        assert seen == ["V", "V"]

    def test_install_returns_value_equal_to_stored_extent(self, rs_instance):
        view = MaterializedView(
            "V", parse_query("select struct(B = s.B, C = s.C) from S s")
        )
        value = view.install(rs_instance)
        assert value is rs_instance["V"]
        assert value == frozenset({Row(B=5, C="x"), Row(B=5, C="y")})

    def test_refresh_after_row_removal_shrinks_the_extent(self, rs_instance):
        view = MaterializedView(
            "V",
            parse_query(
                "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B"
            ),
        )
        view.install(rs_instance)
        assert len(rs_instance["V"]) == 2
        rs_instance["S"] = frozenset({Row(K=7, B=5, C="x")})
        value = view.refresh(rs_instance)
        assert value == frozenset({Row(A=10, C="x")})
        # a refreshed view satisfies its own constraint pair again
        assert check_all(view.constraints(), rs_instance) == []

    def test_stale_view_detected_then_repaired_by_refresh(self, rs_instance):
        view = MaterializedView(
            "V", parse_query("select struct(A = r.A) from R r")
        )
        view.install(rs_instance)
        rs_instance["R"] = rs_instance["R"] | {Row(K=3, A=30, B=9)}
        # stale: cV is violated (a base row has no view image) until refresh
        assert check_all(view.constraints(), rs_instance) != []
        view.refresh(rs_instance)
        assert check_all(view.constraints(), rs_instance) == []

    def test_install_into_mutated_instance_uses_live_base(self, rs_instance):
        rs_instance["R"] = rs_instance["R"] | {Row(K=3, A=30, B=5)}
        view = MaterializedView(
            "V",
            parse_query(
                "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B"
            ),
        )
        value = view.install(rs_instance)
        assert Row(A=30, C="x") in value and Row(A=30, C="y") in value

    def test_view_requires_struct_output(self):
        with pytest.raises(ConstraintError):
            MaterializedView("V", parse_query("select r.A from R r"))

    def test_view_cannot_reference_itself(self):
        with pytest.raises(ConstraintError):
            MaterializedView("V", parse_query("select struct(A = v.A) from V v"))

    def test_schema_type(self, rs_instance):
        schema = Schema("t").add("R", relation(K=INT, A=INT, B=INT))
        view = MaterializedView("V", parse_query("select struct(A = r.A) from R r"))
        view.install(rs_instance, schema)
        assert schema.type_of("V") == relation(A=INT)


class TestClassEncoding:
    def test_populate_and_constraints(self):
        enc = ClassEncoding(
            "Dept", "depts", "DeptD", struct(DName=STRING, DProjs=SetType(STRING))
        )
        inst = Instance({"Proj": frozenset()})
        oid = Oid("Dept", 0)
        enc.populate(inst, {oid: Row(DName="D0", DProjs=frozenset({"P1"}))})
        assert inst["depts"] == frozenset({oid})
        assert inst.deref(oid)["DName"] == "D0"
        assert check_all(enc.constraints(), inst) == []

    def test_register_declares_names(self):
        enc = ClassEncoding("Dept", "depts", "DeptD", struct(DName=STRING))
        schema = Schema("t")
        enc.register(schema)
        assert "depts" in schema and "DeptD" in schema
        assert len(schema.constraints) == len(enc.constraints())

    def test_broken_encoding_detected(self):
        enc = ClassEncoding("Dept", "depts", "DeptD", struct(DName=STRING))
        inst = Instance()
        oid, phantom = Oid("Dept", 0), Oid("Dept", 1)
        enc.populate(inst, {oid: Row(DName="D0")})
        inst["depts"] = frozenset({oid, phantom})  # extent ⊄ dom(dict)
        failures = check_all(enc.constraints(), inst)
        assert "Dept_ext1" in [name for name, _ in failures]

    def test_populate_rejects_foreign_oid(self):
        enc = ClassEncoding("Dept", "depts", "DeptD", struct(DName=STRING))
        from repro.errors import InstanceError

        with pytest.raises(InstanceError):
            enc.populate(Instance(), {Oid("Proj", 0): Row(DName="D0")})


class TestGMap:
    def test_materialize_and_constraints(self, rs_instance):
        gmap = GMap.from_queries(
            "G",
            parse_query("select r.B from R r"),
            parse_path("r.A", scope={"r"}),
        )
        value = gmap.install(rs_instance)
        assert value[5] == frozenset({10})
        assert value[6] == frozenset({20})
        assert check_all(gmap.constraints(), rs_instance) == []

    def test_struct_key_gmap(self, rs_instance):
        gmap = GMap(
            name="G2",
            bindings=parse_query("select r.A from R r, S s where r.B = s.B").bindings,
            conditions=parse_query("select r.A from R r, S s where r.B = s.B").conditions,
            key_output=StructOutput((("A", Attr(Var("r"), "A")),)),
            value_output=Attr(Var("s"), "C"),
        )
        value = gmap.install(rs_instance)
        assert value[Row(A=10)] == frozenset({"x", "y"})
        assert check_all(gmap.constraints(), rs_instance) == []

    def test_corrupted_gmap_detected(self, rs_instance):
        gmap = GMap.from_queries(
            "G", parse_query("select r.B from R r"), parse_path("r.A", scope={"r"})
        )
        gmap.install(rs_instance)
        data = dict(rs_instance["G"].items())
        data[999] = frozenset({0})
        rs_instance["G"] = DictValue(data)
        failures = check_all(gmap.constraints(), rs_instance)
        assert "G_gm2" in [name for name, _ in failures]


class TestJoinIndex:
    def test_install_and_constraints(self, rs_instance):
        ji = JoinIndex("J", "R", "K", "B", "S", "K", "B")
        ji.install(rs_instance)
        assert rs_instance["J"] == frozenset({Row(LK=1, RK=7), Row(LK=1, RK=8)})
        assert "J_IL" in rs_instance and "J_IR" in rs_instance
        assert check_all(ji.constraints(), rs_instance) == []


class TestASR:
    def test_set_valued_path(self):
        inst = Instance({"Proj": frozenset({Row(PName="P1"), Row(PName="P2")})})
        enc = ClassEncoding(
            "Dept", "depts", "DeptD", struct(DName=STRING, DProjs=SetType(STRING))
        )
        enc.populate(
            inst, {Oid("Dept", 0): Row(DName="D0", DProjs=frozenset({"P1", "P2"}))}
        )
        asr = AccessSupportRelation("ASR1", "depts", (PathStep("DProjs"),))
        value = asr.install(inst)
        assert value == frozenset(
            {Row(O0=Oid("Dept", 0), O1="P1"), Row(O0=Oid("Dept", 0), O1="P2")}
        )
        assert check_all(asr.constraints(), inst) == []

    def test_scalar_hop_path(self, rs_instance):
        # R.B --> S via equality on S.B
        asr = AccessSupportRelation(
            "ASR2", "R", (PathStep("B", target_extent="S"),)
        )
        # scalar hop binds s in S with r.B = s... requires oid-style equality;
        # here values are rows, equality hop: r.B = s means s must BE the B
        # value, which is not a row — use the attr form instead.
        definition = asr.definition()
        assert definition.binding_vars() == ("o0", "o1")

    def test_empty_path_rejected(self):
        with pytest.raises(ConstraintError):
            AccessSupportRelation("A", "depts", ()).definition()


class TestHashTable:
    def test_build_matches_secondary_index(self, rs_instance):
        ht = HashTable("H", "S", "B")
        table = ht.build(rs_instance)
        assert len(table[5]) == 2
        ht.install_transient(rs_instance)
        assert check_all(ht.constraints(), rs_instance) == []


class TestDictionaryHelpers:
    def test_dict_comprehension(self):
        d = dict_comprehension([1, 2], lambda k: k * 10)
        assert d[2] == 20

    def test_from_pairs_unique_conflict(self):
        from repro.errors import InstanceError

        with pytest.raises(InstanceError):
            from_pairs_unique([(1, "a"), (1, "b")])

    def test_from_pairs_grouped(self):
        d = from_pairs_grouped([(1, "a"), (1, "b"), (2, "c")])
        assert d[1] == frozenset({"a", "b"})

    def test_invert_unique(self):
        d = from_pairs_unique([(1, "a"), (2, "b")])
        assert invert_unique(d)["a"] == 1

    def test_index_rows(self):
        rows = [Row(A=1, B="x"), Row(A=1, B="y")]
        idx = index_rows(rows, "A")
        assert len(idx[1]) == 2
