"""Tests for the pretty-printer and the error hierarchy."""

import pytest

from repro import errors
from repro.query.parser import parse_constraint, parse_query
from repro.query.printer import format_constraint, format_query


class TestFormatQuery:
    def test_multiline_sections(self):
        query = parse_query(
            "select struct(PN = s) from depts d, d.DProjs s, Proj p "
            "where s = p.PName"
        )
        text = format_query(query)
        assert text.startswith("select")
        assert "from" in text and "where" in text
        assert text.count("\n") >= 3

    def test_single_binding_from_inline(self):
        text = format_query(parse_query("select r.A from R r"))
        assert "from R r" in text

    def test_indent(self):
        text = format_query(parse_query("select r.A from R r"), indent=4)
        assert text.startswith("    select")

    def test_format_round_trips(self):
        query = parse_query(
            "select struct(A = r.A) from R r, S s where r.B = s.B and r.A = 1"
        )
        reparsed = parse_query(" ".join(format_query(query).split()))
        assert reparsed.canonical_key() == query.canonical_key()


class TestFormatConstraint:
    def test_tgd_rendering(self):
        dep = parse_constraint(
            "forall (p in Proj) -> exists (i in dom(I)) i = p.PName", "pi"
        )
        text = format_constraint(dep)
        assert text.startswith("forall (p in Proj)")
        assert "exists (i in dom(I))" in text

    def test_egd_rendering(self):
        dep = parse_constraint(
            "forall (x in R, y in R) where x.A = y.A -> x = y", "key"
        )
        text = format_constraint(dep)
        assert "where x.A = y.A" in text
        assert "exists" not in text

    def test_nonempty_renders_true(self):
        dep = parse_constraint(
            "forall (k in dom(SI)) -> exists (t in SI[k]) true", "ne"
        )
        assert format_constraint(dep).endswith("true")

    def test_constraint_round_trips(self):
        source = "forall (p in Proj) -> exists (i in dom(I)) i = p.PName and I[i] = p"
        dep = parse_constraint(source, "pi")
        reparsed = parse_constraint(format_constraint(dep), "pi")
        assert format_constraint(reparsed) == format_constraint(dep)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if issubclass(obj, Warning):
                    # warnings live in Python's warning hierarchy (so the
                    # warnings machinery and filters apply), not ours
                    continue
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_deprecation_warning_category(self):
        assert issubclass(
            errors.ReproDeprecationWarning, DeprecationWarning
        )

    def test_syntax_error_position(self):
        err = errors.QuerySyntaxError("bad", position=7)
        assert err.position == 7

    def test_nontermination_carries_steps(self):
        err = errors.ChaseNonTermination("loop", steps=42)
        assert err.steps == 42

    def test_catch_all(self):
        from repro.query.parser import parse_query as pq

        with pytest.raises(errors.ReproError):
            pq("select")
