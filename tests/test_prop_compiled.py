"""Property-based differential testing of the compiled executor.

For *any* generated PC query over the generator schema, the three
execution paths agree answer-for-answer:

    compiled fused function  ≡  interpreted pipeline  ≡  reference evaluator

in both scan modes (index-nested-loop and hash-join plans), under
overlay (hybrid semantic-cache) execution, and with ``$param`` markers
substituted into an already-compiled artifact at run time.  This is the
acceptance harness for the compiled tier: any divergence — a wrong
column probe, a missed residual condition, a stale columnar extent — is
a one-line counterexample.
"""

from __future__ import annotations

import dataclasses

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import pc_queries
from repro import Instance, Row, evaluate
from repro.exec.compile import compile_plan
from repro.exec.engine import execute
from repro.query.ast import Eq
from repro.query.paths import Const, Param

RELAXED = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def build_gen_instance(seed: int = 0) -> Instance:
    """A small concrete instance of the generator schema R/S/T (attribute
    values stay in the generator's 0..3 constant range so selections are
    satisfiable often enough to be interesting)."""

    r = frozenset(
        Row(A=(i + seed) % 4, B=(i * 2 + seed) % 4, C=i % 4) for i in range(12)
    )
    s = frozenset(Row(B=(i + seed) % 4, C=(i * 3) % 4) for i in range(8))
    t = frozenset(Row(A=i % 4, C=(i + 1 + seed) % 4) for i in range(6))
    return Instance({"R": r, "S": s, "T": t})


@settings(max_examples=120, **RELAXED)
@given(query=pc_queries(), seed=st.integers(min_value=0, max_value=3))
def test_compiled_matches_interpreted_and_reference(query, seed):
    instance = build_gen_instance(seed)
    reference = evaluate(query, instance)
    for use_hash_joins in (False, True):
        interpreted = execute(
            query, instance, use_hash_joins=use_hash_joins, mode="interpret"
        )
        compiled = execute(
            query, instance, use_hash_joins=use_hash_joins, mode="compiled"
        )
        assert compiled.mode == "compiled"
        assert compiled.results == interpreted.results == reference


@settings(max_examples=60, **RELAXED)
@given(query=pc_queries(), seed=st.integers(min_value=0, max_value=3))
def test_compiled_overlay_matches(query, seed):
    instance = build_gen_instance(seed)
    # shadow one relation the query may read with a different extent
    overlays = {"R": build_gen_instance(seed + 1)["R"]}
    interpreted = execute(query, instance, overlays=overlays)
    compiled = execute(query, instance, overlays=overlays, mode="compiled")
    reference = evaluate(query, instance.overlay(dict(overlays)))
    assert compiled.results == interpreted.results == reference


def _parameterize(query):
    """Replace each path-vs-constant condition with a ``$pN`` marker;
    returns (template, bindings) — None when nothing is parameterizable."""

    conditions = []
    bindings = {}
    for cond in query.conditions:
        if isinstance(cond.right, Const) and not isinstance(cond.left, Const):
            name = f"p{len(bindings)}"
            bindings[name] = cond.right.value
            conditions.append(Eq(cond.left, Param(name)))
        else:
            conditions.append(cond)
    if not bindings:
        return None
    return dataclasses.replace(query, conditions=tuple(conditions)), bindings


@settings(max_examples=60, **RELAXED)
@given(
    query=pc_queries(max_conditions=3),
    seed=st.integers(min_value=0, max_value=3),
    shift=st.integers(min_value=0, max_value=2),
)
def test_params_substitute_into_compiled_artifact(query, seed, shift):
    parameterized = _parameterize(query)
    if parameterized is None:
        return
    template, bindings = parameterized
    instance = build_gen_instance(seed)
    plan = compile_plan(template)
    # rebind: the same artifact must serve shifted constants correctly
    for delta in (0, shift):
        shifted = {name: (value + delta) % 4 for name, value in bindings.items()}
        bound = template.bind_params(
            {name: Const(value) for name, value in shifted.items()}
        )
        reference = evaluate(bound, instance)
        assert plan.run(instance, params=shifted) == reference
        assert (
            execute(template, instance, mode="compiled", params=shifted).results
            == reference
        )
