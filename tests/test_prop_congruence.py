"""Property-based tests for the congruence closure."""

from hypothesis import given, settings, strategies as st

from repro.chase.congruence import CongruenceClosure
from repro.query import paths as P
from repro.query.paths import Attr, Const, Dom, Lookup, SName, Var

VARS = ["a", "b", "c", "d"]
ATTRS = ["A", "B"]


@st.composite
def terms(draw, depth=2):
    kind = draw(st.sampled_from(["var", "const", "name", "attr", "dom", "lookup"]))
    if depth == 0 or kind == "var":
        return Var(draw(st.sampled_from(VARS)))
    if kind == "const":
        return Const(draw(st.integers(0, 2)))
    if kind == "name":
        return SName(draw(st.sampled_from(["R", "M"])))
    if kind == "attr":
        return Attr(draw(terms(depth=depth - 1)), draw(st.sampled_from(ATTRS)))
    if kind == "dom":
        return Dom(draw(terms(depth=depth - 1)))
    return Lookup(draw(terms(depth=depth - 1)), draw(terms(depth=depth - 1)))


@st.composite
def merge_sets(draw):
    pairs = draw(st.lists(st.tuples(terms(), terms()), min_size=0, max_size=6))
    return pairs


@settings(max_examples=60, deadline=None)
@given(merge_sets(), terms(), terms(), terms())
def test_equivalence_relation(pairs, x, y, z):
    cc = CongruenceClosure()
    for a, b in pairs:
        cc.merge(a, b)
    # reflexivity
    assert cc.equal(x, x)
    # symmetry
    assert cc.equal(x, y) == cc.equal(y, x)
    # transitivity
    if cc.equal(x, y) and cc.equal(y, z):
        assert cc.equal(x, z)


@settings(max_examples=60, deadline=None)
@given(merge_sets(), terms(), terms(), st.sampled_from(ATTRS))
def test_congruence_attr(pairs, x, y, attr):
    cc = CongruenceClosure()
    for a, b in pairs:
        cc.merge(a, b)
    if cc.equal(x, y):
        assert cc.equal(Attr(x, attr), Attr(y, attr))


@settings(max_examples=60, deadline=None)
@given(merge_sets(), terms(), terms(), terms(), terms())
def test_congruence_lookup(pairs, m1, m2, k1, k2):
    cc = CongruenceClosure()
    for a, b in pairs:
        cc.merge(a, b)
    if cc.equal(m1, m2) and cc.equal(k1, k2):
        assert cc.equal(Lookup(m1, k1), Lookup(m2, k2))


@settings(max_examples=60, deadline=None)
@given(merge_sets(), terms())
def test_members_share_class(pairs, x):
    cc = CongruenceClosure()
    for a, b in pairs:
        cc.merge(a, b)
    cc.add(x)
    for member in cc.members(x):
        assert cc.equal(member, x)


@settings(max_examples=60, deadline=None)
@given(merge_sets(), terms(), st.sampled_from(VARS))
def test_equivalent_avoiding_sound(pairs, x, banned_var):
    cc = CongruenceClosure()
    for a, b in pairs:
        cc.merge(a, b)
    cc.add(x)
    banned = frozenset((banned_var,))
    result = cc.equivalent_avoiding(x, banned)
    if result is not None:
        assert not (P.free_vars(result) & banned)
        assert cc.equal(result, x)


@settings(max_examples=40, deadline=None)
@given(merge_sets())
def test_merge_order_irrelevant(pairs):
    cc1 = CongruenceClosure()
    for a, b in pairs:
        cc1.merge(a, b)
    cc2 = CongruenceClosure()
    for a, b in reversed(pairs):
        cc2.merge(b, a)
    all_terms = [t for a, b in pairs for t in (a, b)]
    for i, s in enumerate(all_terms):
        for t in all_terms[i + 1 :]:
            assert cc1.equal(s, t) == cc2.equal(s, t)


@settings(max_examples=40, deadline=None)
@given(merge_sets(), st.integers(0, 2), st.integers(0, 2))
def test_constant_clash_detection(pairs, c1, c2):
    cc = CongruenceClosure()
    for a, b in pairs:
        cc.merge(a, b)
    before = cc.inconsistent
    cc.merge(Const(c1), Const(c2))
    if c1 != c2:
        assert cc.inconsistent
    else:
        assert cc.inconsistent == before
