"""Property-test harness for the :class:`repro.Database` façade.

The contract: for *any* query, ``db.prepare(q).run()`` ≡ ``db.execute(q)``
≡ the cold ``Optimizer`` + ``execute`` pipeline ≡ the reference evaluator
— and the equivalence survives plan-cache hits (repeat runs skip
chase/backchase entirely) and instance mutations (the mutation drops the
dependent plan-cache entries and the next run transparently re-optimizes
against refreshed statistics).

Queries come from the generators in ``conftest`` over the R/S/T generator
schema; the instance carries *installed* (hence consistent) secondary
indexes on R and S, whose constraints give the backchase real access
paths to discover.  Mutations target T only — the one relation with no
derived structure — so the physical design never goes stale and logical
equivalence must hold across every arm.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import pc_queries
from repro import (
    Database,
    Instance,
    Optimizer,
    Row,
    Statistics,
    evaluate,
    execute,
)
from repro.physical.indexes import SecondaryIndex

RELAXED = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def build_database(seed: int = 0) -> Database:
    """A Database over the generator schema with consistent indexes.

    Attribute values stay in the 0..3 range the query generator draws its
    constants from, so selections are satisfiable often enough to make the
    index access paths genuinely win sometimes.
    """

    r = frozenset(
        Row(A=(i + seed) % 4, B=(i * 2 + seed) % 4, C=i % 4) for i in range(12)
    )
    s = frozenset(Row(B=(i + seed) % 4, C=(i * 3) % 4) for i in range(8))
    t = frozenset(Row(A=i % 4, C=(i + 1 + seed) % 4) for i in range(6))
    instance = Instance({"R": r, "S": s, "T": t})
    constraints = []
    for index in (
        SecondaryIndex("IXB", "R", "B"),
        SecondaryIndex("IXS", "S", "B"),
    ):
        index.install(instance)
        constraints.extend(index.constraints())
    return Database(
        constraints=constraints,
        physical_names=frozenset(instance.names()),
        instance=instance,
    )


def cold_pipeline(db: Database, query):
    """The pre-façade path: a fresh Optimizer + execute, fresh statistics."""

    optimizer = Optimizer(
        list(db.constraints),
        physical_names=db.physical_names,
        statistics=Statistics.from_instance(db.instance),
    )
    return execute(optimizer.optimize(query).best.query, db.instance)


def mutate_t(instance: Instance, round_number: int) -> None:
    instance["T"] = frozenset(
        Row(A=(i + round_number) % 4, C=(i + 2 * round_number) % 4)
        for i in range(5 + round_number % 3)
    )


@settings(max_examples=20, **RELAXED)
@given(
    queries=st.lists(pc_queries(), min_size=1, max_size=3),
    mutate_after=st.integers(min_value=0, max_value=2),
)
def test_prepared_equals_execute_equals_cold(queries, mutate_after):
    """The headline property, including a mid-sequence mutation."""

    db = build_database()
    for i, query in enumerate(queries):
        if i == mutate_after:
            mutate_t(db.instance, i + 1)
        reference = evaluate(query, db.instance)
        cold = cold_pipeline(db, query)
        via_execute = db.execute(query)
        prepared = db.prepare(query)
        first = prepared.run()
        assert cold.results == reference, f"cold diverged for {query}"
        assert via_execute.results == reference, f"execute diverged for {query}"
        assert first.results == reference, f"prepared diverged for {query}"

        # A repeat run is a pure plan-cache hit: no new optimization.
        before = db.plan_cache_info()
        second = prepared.run()
        after = db.plan_cache_info()
        assert second.results == reference
        assert after.misses == before.misses
        assert after.hits > before.hits
    db.close()


@settings(max_examples=20, **RELAXED)
@given(query=pc_queries())
def test_mutation_invalidates_and_reoptimizes(query):
    """Prepared before a mutation, correct after it — with the plan-cache
    entry demonstrably dropped when the query depends on the mutated
    relation."""

    db = build_database()
    prepared = db.prepare(query)
    assert prepared.run().results == evaluate(query, db.instance)

    depends_on_t = "T" in query.schema_names()
    before = db.plan_cache_info()
    mutate_t(db.instance, 7)
    after = db.plan_cache_info()
    if depends_on_t:
        assert after.invalidations > before.invalidations
    else:
        assert after.invalidations == before.invalidations

    reference = evaluate(query, db.instance)
    assert prepared.run().results == reference
    assert db.execute(query).results == reference
    assert cold_pipeline(db, query).results == reference
    db.close()
