"""Differential-testing harness for the hybrid rewrite tier.

The contract: for *any* sequence of queries — including mid-stream base
mutations and pathological eviction budgets — the three serving modes
agree answer-for-answer:

    hybrid mode  ≡  view-only mode  ≡  cold evaluation on the live instance

Hybrid answers additionally may read base relations directly, so the
harness is specifically hunting the failure class the view-only tier
cannot have: a view ⋈ base plan serving a stale base read, a wrong
overlay resolution, or benefit/stat accounting diverging between modes.
``CacheStats`` must stay monotone in every mode throughout.

Together the tests generate >= 210 cases (80 + 70 + 60 sequences, each a
multi-query differential check), satisfying the acceptance criterion of
>= 200 generated cases including mutations under tight eviction budgets.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import pc_queries
from repro import Instance, Row, Statistics, evaluate
from repro.semcache import CachedSession, CostBenefitPolicy

RELAXED = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def build_gen_instance(seed: int = 0) -> Instance:
    """A small concrete instance of the generator schema R/S/T (attribute
    values stay in the generator's 0..3 constant range so selections are
    satisfiable often enough to make hits interesting)."""

    r = frozenset(
        Row(A=(i + seed) % 4, B=(i * 2 + seed) % 4, C=i % 4) for i in range(12)
    )
    s = frozenset(Row(B=(i + seed) % 4, C=(i * 3) % 4) for i in range(8))
    t = frozenset(Row(A=i % 4, C=(i + 1 + seed) % 4) for i in range(6))
    return Instance({"R": r, "S": s, "T": t})


def make_sessions(instance: Instance, **options):
    """(hybrid, view-only) sessions over the same live instance."""

    statistics = Statistics.from_instance(instance)
    hybrid = CachedSession(
        instance, statistics=statistics, hybrid=True, **options
    )
    view_only = CachedSession(
        instance, statistics=statistics, hybrid=False, **options
    )
    return hybrid, view_only


def assert_monotone(previous, current):
    """Every counter non-decreasing; returns the new snapshot."""

    for name, value in current.items():
        assert value >= previous.get(name, 0), name
    return current


def run_differential(instance, queries, sessions, mutate_at=None, mutated=None):
    """Drive all sessions through ``queries``, checking three-way equality
    and per-session stats monotonicity at every step."""

    snapshots = [dict() for _ in sessions]
    for i, query in enumerate(queries):
        if mutate_at is not None and i == mutate_at:
            instance[mutated] = build_gen_instance(seed=1)[mutated]
        expected = evaluate(query, instance)
        for j, session in enumerate(sessions):
            got = session.run(query)
            assert got.results == expected, (
                f"{'hybrid' if session.hybrid else 'view-only'} answer "
                f"({got.source}) diverged for {query}"
            )
            # as_dict includes benefit_accrued, so monotonicity covers it
            snapshots[j] = assert_monotone(snapshots[j], session.stats.as_dict())


@settings(max_examples=80, **RELAXED)
@given(queries=st.lists(pc_queries(), min_size=1, max_size=6))
def test_hybrid_equals_view_only_equals_cold(queries):
    """The headline differential property on mutation-free sequences."""

    instance = build_gen_instance()
    hybrid, view_only = make_sessions(instance)
    try:
        run_differential(instance, queries, (hybrid, view_only))
        # view-only mode never serves partial hits; hybrid never lies
        # about serving them
        assert view_only.stats.hybrid_hits == 0
    finally:
        hybrid.close()
        view_only.close()


@settings(max_examples=70, **RELAXED)
@given(
    queries=st.lists(pc_queries(), min_size=2, max_size=5),
    mutate_after=st.integers(min_value=0, max_value=3),
    mutated=st.sampled_from(["R", "S", "T"]),
)
def test_mutation_mid_sequence_never_stales_any_mode(
    queries, mutate_after, mutated
):
    """Base mutations mid-sequence: hybrid plans re-resolve base reads
    against the live instance and invalidation drops dependents, so no
    mode may ever serve a stale answer."""

    instance = build_gen_instance()
    hybrid, view_only = make_sessions(instance)
    try:
        run_differential(
            instance,
            queries,
            (hybrid, view_only),
            mutate_at=min(mutate_after, len(queries) - 1),
            mutated=mutated,
        )
    finally:
        hybrid.close()
        view_only.close()


@settings(max_examples=60, **RELAXED)
@given(
    queries=st.lists(pc_queries(), min_size=3, max_size=6),
    mutate_after=st.integers(min_value=0, max_value=4),
    mutated=st.sampled_from(["R", "S", "T"]),
)
def test_tight_eviction_budgets_with_mutations(queries, mutate_after, mutated):
    """Pathologically small pools + mid-stream mutations: eviction and
    invalidation may only ever cost recomputation, in either mode."""

    instance = build_gen_instance()
    hybrid, view_only = make_sessions(
        instance, policy=CostBenefitPolicy(max_views=1, max_total_tuples=8)
    )
    try:
        run_differential(
            instance,
            queries,
            (hybrid, view_only),
            mutate_at=min(mutate_after, len(queries) - 1),
            mutated=mutated,
        )
        for session in (hybrid, view_only):
            assert len(session.cache) <= 1
    finally:
        hybrid.close()
        view_only.close()


@settings(max_examples=40, **RELAXED)
@given(query=pc_queries())
def test_repeat_promotes_identically_across_modes(query):
    """Running the same query twice: both modes serve the repeat from the
    cache (exact hit) with an identical answer whenever registration
    succeeded — promotion semantics do not depend on the mode."""

    instance = build_gen_instance()
    hybrid, view_only = make_sessions(instance)
    try:
        for session in (hybrid, view_only):
            first = session.run(query)
            second = session.run(query)
            assert second.results == first.results
            if session.stats.registrations:
                assert second.source == "exact"
    finally:
        hybrid.close()
        view_only.close()
