"""Property-based end-to-end soundness of the optimizer.

For randomized combinations of physical structures (secondary indexes on
random attributes, materialized projection/join views) over randomized
instances, every plan Algorithm 1 emits must return exactly the logical
query's answer — on the instance the structures were built from (where
the implementation-mapping constraints hold by construction).
"""

from hypothesis import given, settings, strategies as st

from repro.model.instance import Instance
from repro.model.values import Row
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.statistics import Statistics
from repro.physical.indexes import SecondaryIndex
from repro.physical.views import MaterializedView
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query


@st.composite
def scenarios(draw):
    n_r = draw(st.integers(0, 12))
    n_s = draw(st.integers(0, 12))
    r = frozenset(
        Row(A=draw(st.integers(0, 3)), B=draw(st.integers(0, 3)))
        for _ in range(n_r)
    )
    s = frozenset(
        Row(B=draw(st.integers(0, 3)), C=draw(st.integers(0, 3)))
        for _ in range(n_s)
    )
    instance = Instance({"R": r, "S": s})

    structures = []
    if draw(st.booleans()):
        structures.append(SecondaryIndex("IRA", "R", draw(st.sampled_from(["A", "B"]))))
    if draw(st.booleans()):
        structures.append(SecondaryIndex("ISB", "S", "B"))
    if draw(st.booleans()):
        structures.append(
            MaterializedView(
                "V",
                parse_query(
                    "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B"
                ),
            )
        )
    constraints = []
    for structure in structures:
        structure.install(instance)
        constraints.extend(structure.constraints())

    query_text = draw(
        st.sampled_from(
            [
                "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B",
                "select r.A from R r where r.B = 2",
                "select struct(A = r.A, B = s.B) from R r, S s "
                "where r.B = s.B and r.A = 1",
                "select s.C from S s where s.B = 0",
            ]
        )
    )
    return instance, constraints, parse_query(query_text)


@settings(max_examples=25, deadline=None)
@given(scenarios())
def test_every_emitted_plan_is_correct(scenario):
    instance, constraints, query = scenario
    optimizer = Optimizer(
        constraints,
        statistics=Statistics.from_instance(instance),
        max_backchase_nodes=5000,
    )
    result = optimizer.optimize(query)
    reference = evaluate(query, instance)
    for plan in result.plans:
        assert evaluate(plan.query, instance) == reference, str(plan.query)


@settings(max_examples=15, deadline=None)
@given(scenarios())
def test_best_plan_never_costlier_than_original(scenario):
    instance, constraints, query = scenario
    from repro.optimizer.cost import estimate_cost

    stats = Statistics.from_instance(instance)
    optimizer = Optimizer(constraints, statistics=stats, max_backchase_nodes=5000)
    result = optimizer.optimize(query)
    assert result.best.cost <= estimate_cost(query, stats) + 1e-9


@settings(max_examples=15, deadline=None)
@given(scenarios())
def test_rule_based_plans_correct(scenario):
    instance, constraints, query = scenario
    from repro.optimizer.rules import RuleBasedOptimizer

    optimizer = RuleBasedOptimizer(
        constraints,
        statistics=Statistics.from_instance(instance),
        strategy="beam",
        beam_width=3,
    )
    reference = evaluate(query, instance)
    for plan, _cost in optimizer.search(query):
        assert evaluate(plan, instance) == reference, str(plan)
