"""Property-test harness for the cost-bounded backchase.

The contract of the ``pruned`` strategy: on *any* query and constraint
set, the plan it returns costs exactly as much as the cheapest plan the
full enumeration would find — pruning may drop dominated normal forms but
never the winner.  Exercised here on randomly generated PC queries and
constraint sets (generators in ``conftest``), with and without a
physical-schema filter, plus a direct soundness check of the lower bound
that justifies the pruning.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, assume, given, settings

from conftest import constraint_sets, pc_queries
from repro.backchase.backchase import minimal_subqueries
from repro.errors import BackchaseError, ChaseNonTermination
from repro.optimizer.cost import estimate_cost, plan_cost_floor
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.statistics import Statistics

COMMON = dict(max_chase_steps=80, max_backchase_nodes=4_000)

RELAXED = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _optimize_both(query, deps, **kwargs):
    try:
        full = Optimizer(deps, strategy="full", **COMMON, **kwargs).optimize(query)
        pruned = Optimizer(deps, strategy="pruned", **COMMON, **kwargs).optimize(
            query
        )
    except (ChaseNonTermination, BackchaseError):
        assume(False)
    return full, pruned


@settings(max_examples=200, **RELAXED)
@given(query=pc_queries(), deps=constraint_sets())
def test_pruned_best_cost_equals_full(query, deps):
    """The headline property: equal best cost on ≥200 generated cases."""

    full, pruned = _optimize_both(query, deps)
    assert pruned.best.cost == pytest.approx(full.best.cost)
    # the pruned plan set is a subset of the full enumeration's
    full_keys = {p.query.canonical_key() for p in full.plans}
    pruned_keys = {p.query.canonical_key() for p in pruned.plans}
    assert pruned_keys <= full_keys
    # and the search never does more work than the full enumeration
    assert (
        pruned.backchase_stats.candidates_explored
        <= full.backchase_stats.candidates_explored
    )
    assert (
        pruned.backchase_stats.nodes_visited
        <= full.backchase_stats.nodes_visited
    )


@settings(max_examples=60, **RELAXED)
@given(query=pc_queries(), deps=constraint_sets())
def test_pruned_best_cost_equals_full_under_physical_filter(query, deps):
    """With a physical filter only eligible plans may tighten the bound;
    the filtered winner must still match the full enumeration's."""

    physical = frozenset(["S", "T", "IXA", "IXB", "IXS"])
    full, pruned = _optimize_both(query, deps, physical_names=physical)
    assert pruned.best.cost == pytest.approx(full.best.cost)
    assert pruned.best.physical_only == full.best.physical_only


@settings(max_examples=60, **RELAXED)
@given(query=pc_queries(), deps=constraint_sets())
def test_cost_floor_lower_bounds_every_normal_form(query, deps):
    """`plan_cost_floor` soundness, directly: the floor of the universal
    plan never exceeds the cost of any reachable normal form."""

    stats = Statistics()
    try:
        opt = Optimizer(deps, strategy="full", **COMMON)
        universal = opt.universal_plan(query).query
        forms = minimal_subqueries(
            universal, deps, max_nodes=COMMON["max_backchase_nodes"]
        )
    except (ChaseNonTermination, BackchaseError):
        assume(False)
    floor = plan_cost_floor(universal, stats)
    for form in forms:
        assert floor <= estimate_cost(form, stats) + 1e-9, str(form)
