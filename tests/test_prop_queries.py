"""Property-based tests: evaluator/executor agreement, minimization
soundness, chase soundness on constraint-satisfying instances, and
parser/printer round-trips — all on randomly generated relational queries
and instances over R(A, B) and S(B, C).
"""

from hypothesis import given, settings, strategies as st

from repro.backchase.minimize import minimize
from repro.chase.chase import chase
from repro.exec.engine import execute
from repro.model.instance import Instance
from repro.model.values import Row
from repro.physical.indexes import SecondaryIndex
from repro.physical.views import MaterializedView
from repro.query.ast import Binding, Eq, PCQuery, StructOutput
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.paths import Attr, Const, SName, Var

REL_ATTRS = {"R": ("A", "B"), "S": ("B", "C")}


@st.composite
def instances(draw):
    def rows(attrs):
        return frozenset(
            Row(**{a: draw(st.integers(0, 3)) for a in attrs})
            for _ in range(draw(st.integers(0, 4)))
        )

    return Instance({"R": rows(("A", "B")), "S": rows(("B", "C"))})


@st.composite
def queries(draw):
    n = draw(st.integers(1, 3))
    bindings = []
    for i in range(n):
        rel = draw(st.sampled_from(["R", "S"]))
        bindings.append(Binding(f"x{i}", SName(rel)))
    attr_paths = [
        Attr(Var(b.var), attr)
        for b in bindings
        for attr in REL_ATTRS[b.source.name]
    ]
    n_conds = draw(st.integers(0, 2))
    conditions = []
    for _ in range(n_conds):
        left = draw(st.sampled_from(attr_paths))
        if draw(st.booleans()):
            right = draw(st.sampled_from(attr_paths))
        else:
            right = Const(draw(st.integers(0, 3)))
        conditions.append(Eq(left, right))
    out_fields = tuple(
        (f"O{i}", draw(st.sampled_from(attr_paths)))
        for i in range(draw(st.integers(1, 2)))
    )
    query = PCQuery(StructOutput(out_fields), tuple(bindings), tuple(conditions))
    query.validate()
    return query


@settings(max_examples=60, deadline=None)
@given(queries(), instances())
def test_executor_agrees_with_reference(query, instance):
    assert execute(query, instance).results == evaluate(query, instance)


@settings(max_examples=40, deadline=None)
@given(queries(), instances())
def test_hash_join_executor_agrees(query, instance):
    assert (
        execute(query, instance, use_hash_joins=True).results
        == evaluate(query, instance)
    )


@settings(max_examples=30, deadline=None)
@given(queries(), instances())
def test_minimization_preserves_semantics(query, instance):
    minimal = minimize(query)
    assert len(minimal.bindings) <= len(query.bindings)
    assert evaluate(minimal, instance) == evaluate(query, instance)


@settings(max_examples=30, deadline=None)
@given(queries())
def test_minimization_idempotent(query):
    once = minimize(query)
    assert minimize(once).canonical_key() == once.canonical_key()


@settings(max_examples=25, deadline=None)
@given(queries(), instances())
def test_chase_preserves_semantics_on_consistent_instances(query, instance):
    """Chasing with view/index constraints must not change results on
    instances where those structures are faithfully materialized."""

    view = MaterializedView(
        "V", parse_query("select struct(A = r.A, B = r.B) from R r")
    )
    index = SecondaryIndex("IS", "S", "B")
    view.install(instance)
    index.install(instance)
    deps = view.constraints() + index.constraints()
    chased = chase(query, deps).query
    assert evaluate(chased, instance) == evaluate(query, instance)


@settings(max_examples=50, deadline=None)
@given(queries())
def test_parser_round_trip(query):
    reparsed = parse_query(str(query))
    assert reparsed.canonical_key() == query.canonical_key()


@settings(max_examples=30, deadline=None)
@given(queries(), instances())
def test_canonical_form_preserves_semantics(query, instance):
    canonical = query.canonical()
    assert evaluate(canonical, instance) == evaluate(query, instance)
