"""Property-test harness for semantic-cache correctness.

The contract of the cache: for *any* sequence of queries, every answer a
:class:`~repro.semcache.CachedSession` returns — whether served cold, from
an exact entry, or via a backchase rewrite onto cached extents — equals
the cold evaluation of that query on the current instance.  Exercised on
randomly generated PC queries (generators in ``conftest``) over a concrete
instance of the generator schema, including sequences with mid-stream
mutations (invalidation must prevent stale answers) and tight eviction
budgets (eviction must only ever cost recomputation).
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import pc_queries
from repro import Instance, Row, Statistics, evaluate
from repro.semcache import CachedSession, CostBenefitPolicy

RELAXED = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def build_gen_instance(seed: int = 0) -> Instance:
    """A small concrete instance of the generator schema R/S/T.

    Attribute values stay in the 0..3 range the query generator draws its
    constants from, so selections are satisfiable often enough to make
    hits interesting.
    """

    r = frozenset(
        Row(A=(i + seed) % 4, B=(i * 2 + seed) % 4, C=i % 4) for i in range(12)
    )
    s = frozenset(Row(B=(i + seed) % 4, C=(i * 3) % 4) for i in range(8))
    t = frozenset(Row(A=i % 4, C=(i + 1 + seed) % 4) for i in range(6))
    return Instance({"R": r, "S": s, "T": t})


def make_session(instance: Instance, **options) -> CachedSession:
    return CachedSession(
        instance, statistics=Statistics.from_instance(instance), **options
    )


@settings(max_examples=60, **RELAXED)
@given(queries=st.lists(pc_queries(), min_size=1, max_size=6))
def test_cached_answers_equal_cold_answers(queries):
    """The headline property: cache on ≡ cache off, on any query sequence."""

    instance = build_gen_instance()
    session = make_session(instance)
    try:
        for query in queries:
            got = session.run(query)
            assert got.results == evaluate(query, instance), (
                f"{got.source} answer diverged for {query}"
            )
    finally:
        session.close()


@settings(max_examples=40, **RELAXED)
@given(
    queries=st.lists(pc_queries(), min_size=2, max_size=5),
    mutate_after=st.integers(min_value=0, max_value=3),
    mutated=st.sampled_from(["R", "S", "T"]),
)
def test_invalidation_prevents_stale_answers(queries, mutate_after, mutated):
    """Mutating a source mid-sequence never yields stale cached answers."""

    instance = build_gen_instance()
    session = make_session(instance)
    try:
        for i, query in enumerate(queries):
            if i == mutate_after:
                instance[mutated] = build_gen_instance(seed=1)[mutated]
            got = session.run(query)
            assert got.results == evaluate(query, instance), (
                f"{got.source} answer diverged after mutating {mutated} "
                f"for {query}"
            )
    finally:
        session.close()


@settings(max_examples=30, **RELAXED)
@given(queries=st.lists(pc_queries(), min_size=3, max_size=7))
def test_eviction_preserves_correctness(queries):
    """A pathologically small pool still answers correctly."""

    instance = build_gen_instance()
    session = make_session(
        instance, policy=CostBenefitPolicy(max_views=1, max_total_tuples=8)
    )
    try:
        for query in queries:
            got = session.run(query)
            assert got.results == evaluate(query, instance)
        assert len(session.cache) <= 1
        assert session.cache.total_tuples() <= 8 or len(session.cache) == 1
    finally:
        session.close()


@settings(max_examples=40, **RELAXED)
@given(query=pc_queries())
def test_repeat_is_exact_hit_with_identical_answer(query):
    """Running the same query twice: second answer is identical and served
    from the cache (exact or rewrite — never a second cold execution when
    registration succeeded)."""

    instance = build_gen_instance()
    session = make_session(instance)
    try:
        first = session.run(query)
        second = session.run(query)
        assert second.results == first.results
        if session.stats.registrations:
            assert second.source == "exact"
    finally:
        session.close()
