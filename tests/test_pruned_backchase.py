"""Regression tests for the cost-bounded backchase and containment cache.

Covers: monotone `BackchaseStats` counters, containment-cache verdict
parity with the uncached decision procedure on the paper's E1 (ProjDept)
and E5 (R ⋈ S with views) examples, pruned-vs-full agreement on the
workload scenarios, and the strategy plumbing.
"""

import pytest

from repro.backchase.backchase import (
    BackchaseStats,
    minimal_subqueries,
)
from repro.backchase.pruned import pruned_minimal_subqueries
from repro.chase.chase import ChaseEngine, chase
from repro.chase.containment import is_contained_in
from repro.errors import BackchaseError, OptimizationError
from repro.optimizer.cost import estimate_cost
from repro.optimizer.optimizer import Optimizer
from repro.query.parser import parse_query


def q(text):
    return parse_query(text)


REDUNDANT = (
    "select struct(A = p.A, B = r.B) from R p, R q, R r "
    "where p.B = q.A and q.B = r.B"
)


class TestStatsCounters:
    def test_counters_monotone_across_searches(self):
        """A stats object threaded through several enumerations only ever
        accumulates: every counter is non-decreasing run over run."""

        stats = BackchaseStats()
        previous = stats.as_dict()
        for _ in range(3):
            minimal_subqueries(q(REDUNDANT), [], stats=stats)
            current = stats.as_dict()
            for name, value in current.items():
                assert value >= previous[name], name
            previous = current

    def test_counter_invariants_full(self):
        stats = BackchaseStats()
        minimal_subqueries(q(REDUNDANT), [], stats=stats)
        assert stats.nodes_visited >= 1
        assert stats.normal_forms >= 1
        assert stats.steps_attempted >= stats.candidates_explored
        assert stats.candidates_explored >= stats.steps_applied
        assert stats.candidates_pruned == 0  # full mode never prunes
        assert min(stats.as_dict().values()) >= 0

    def test_counter_invariants_pruned(self):
        stats = BackchaseStats()
        pruned_minimal_subqueries(q(REDUNDANT), [], stats=stats)
        assert stats.nodes_visited >= 1
        assert stats.normal_forms >= 1
        assert stats.steps_attempted >= stats.candidates_explored
        assert stats.candidates_explored >= stats.steps_applied
        assert min(stats.as_dict().values()) >= 0

    def test_pruned_never_explores_more(self):
        full_stats, pruned_stats = BackchaseStats(), BackchaseStats()
        minimal_subqueries(q(REDUNDANT), [], stats=full_stats)
        pruned_minimal_subqueries(q(REDUNDANT), [], stats=pruned_stats)
        assert (
            pruned_stats.candidates_explored <= full_stats.candidates_explored
        )
        assert pruned_stats.nodes_visited <= full_stats.nodes_visited


class TestContainmentCacheParity:
    """The cache must return exactly the uncached verdicts (E1 and E5)."""

    def _assert_parity(self, workload):
        deps = workload.constraints
        engine = ChaseEngine(deps)
        universal = chase(workload.query, deps).query
        forms = minimal_subqueries(universal, deps, engine)
        assert forms
        pairs = [(form, universal) for form in forms]
        pairs += [(universal, form) for form in forms]
        pairs.append((workload.query, universal))
        # `is_contained_in` is the raw decision procedure: it shares the
        # engine's chase memo but never consults the verdict cache.
        for q1, q2 in pairs:
            first = engine.contained_in(q1, q2)
            hits_before = engine.containment.hits
            second = engine.contained_in(q1, q2)  # cached
            assert engine.containment.hits == hits_before + 1
            uncached = is_contained_in(q1, q2, deps, engine)
            assert first == second == uncached, f"{q1} vs {q2}"

    def test_e1_projdept_verdicts(self, projdept):
        self._assert_parity(projdept)

    def test_e5_views_verdicts(self, rs_workload):
        self._assert_parity(rs_workload)


class TestBoundedCacheCounterParity:
    """Regression: with a tightly bounded containment cache, an evicted
    verdict re-derived within one backchase must not double-count in the
    hit/miss counters — `cache_info()` traffic (and the `BackchaseStats`
    deltas computed from it) must be identical to an unbounded engine's."""

    # Three independent redundant groups: the same candidate shapes are
    # reachable along many interleaved removal orders, so a bounded LRU
    # evicts verdicts that are later re-probed within the same search.
    INTERLEAVED = (
        "select struct(A = a.A, B = c.B, C = e.C) "
        "from R a, R b, S c, S d, T e, T f "
        "where a.A = b.A and c.B = d.B and e.C = f.C"
    )

    def _search(self, cache_size):
        engine = ChaseEngine([], containment_cache_size=cache_size)
        stats = BackchaseStats()
        forms = pruned_minimal_subqueries(
            q(self.INTERLEAVED), [], engine=engine, stats=stats
        )
        return engine, stats, forms

    def test_bounded_counters_equal_unbounded(self):
        unbounded_engine, unbounded, reference = self._search(None)
        for size in (1, 2, 4):
            engine, stats, forms = self._search(size)
            assert stats.cache_misses == unbounded.cache_misses, size
            assert stats.cache_hits == unbounded.cache_hits, size
            assert [f.canonical_key() for f in forms] == [
                f.canonical_key() for f in reference
            ]

    def test_eviction_happens_but_misses_count_distinct_shapes(self):
        """The scenario of the bug: the bound is tight enough to evict
        mid-search, yet each distinct candidate shape still counts as at
        most one miss."""

        engine, stats, _ = self._search(1)
        assert engine.containment.evictions > 0  # the bound really bit
        # every miss is a distinct shape decided once: misses can never
        # exceed the candidate shapes explored
        assert stats.cache_misses <= stats.candidates_explored
        _, unbounded, _ = self._search(None)
        assert stats.cache_misses == unbounded.cache_misses

    def test_optimizer_counters_stable_under_tiny_cache(self, rs_workload):
        """End-to-end: a session-sized engine bound does not distort the
        optimizer's reported containment-cache traffic."""

        results = {}
        for size in (None, 1):
            opt = Optimizer(
                rs_workload.constraints,
                physical_names=rs_workload.physical_names,
                statistics=rs_workload.statistics,
            )
            engine = ChaseEngine(
                rs_workload.constraints, containment_cache_size=size
            )
            stats = BackchaseStats()
            universal = chase(rs_workload.query, rs_workload.constraints).query
            opt.minimal_plans(universal, stats, engine=engine)
            results[size] = stats.cache_misses
        assert results[1] == results[None]


class TestPrunedAgainstFull:
    @pytest.mark.parametrize("workload", ["projdept", "rabc", "rs_workload"])
    def test_equal_best_cost_on_workloads(self, workload, request):
        wl = request.getfixturevalue(workload)
        results = {}
        for strategy in ("full", "pruned"):
            opt = Optimizer(
                wl.constraints,
                physical_names=wl.physical_names,
                statistics=wl.statistics,
                strategy=strategy,
            )
            results[strategy] = opt.optimize(wl.query)
        full, pruned = results["full"], results["pruned"]
        assert pruned.best.cost == pytest.approx(full.best.cost)
        assert pruned.best.physical_only == full.best.physical_only
        full_keys = {p.query.canonical_key() for p in full.plans}
        pruned_keys = {p.query.canonical_key() for p in pruned.plans}
        assert pruned_keys <= full_keys
        assert (
            pruned.backchase_stats.candidates_explored
            <= full.backchase_stats.candidates_explored
        )

    def test_unbounded_pruned_search_is_the_full_enumeration(self, rs_workload):
        """With no eligible complete plan the bound never tightens and the
        pruned search must return every normal form."""

        wl = rs_workload
        universal = chase(wl.query, wl.constraints).query
        full = minimal_subqueries(universal, wl.constraints)
        unbounded = pruned_minimal_subqueries(
            universal, wl.constraints, plan_cost=lambda form: None
        )
        assert [f.canonical_key() for f in unbounded] == [
            f.canonical_key() for f in full
        ]

    def test_pruned_keeps_a_cheapest_form(self, rs_workload):
        wl = rs_workload
        universal = chase(wl.query, wl.constraints).query
        full = minimal_subqueries(universal, wl.constraints)
        pruned = pruned_minimal_subqueries(
            universal, wl.constraints, statistics=wl.statistics
        )
        best_full = min(estimate_cost(f, wl.statistics) for f in full)
        best_pruned = min(estimate_cost(f, wl.statistics) for f in pruned)
        assert best_pruned == pytest.approx(best_full)


class TestStrategyPlumbing:
    def test_minimal_subqueries_dispatches(self):
        query = q(REDUNDANT)
        full = minimal_subqueries(query, [], strategy="full")
        pruned = minimal_subqueries(query, [], strategy="pruned")
        assert {f.canonical_key() for f in pruned} <= {
            f.canonical_key() for f in full
        }

    def test_unknown_strategy_rejected(self):
        with pytest.raises(BackchaseError, match="unknown backchase strategy"):
            minimal_subqueries(q(REDUNDANT), [], strategy="greedy")
        with pytest.raises(OptimizationError, match="unknown strategy"):
            Optimizer([], strategy="greedy")

    def test_pruned_options_rejected_for_full(self):
        with pytest.raises(BackchaseError, match="strategy='pruned'"):
            minimal_subqueries(
                q(REDUNDANT), [], strategy="full", plan_cost=lambda f: None
            )

    def test_node_budget_enforced_in_pruned_mode(self):
        query = q(
            "select struct(A = a.A) from R a, R b, R c, R d "
            "where a.A = b.A and b.A = c.A and c.A = d.A"
        )
        with pytest.raises(BackchaseError, match="exceeded"):
            pruned_minimal_subqueries(query, [], max_nodes=1)

    def test_optimizer_reports_strategy(self, rabc):
        opt = Optimizer(
            rabc.constraints,
            physical_names=rabc.physical_names,
            statistics=rabc.statistics,
        )
        result = opt.optimize(rabc.query)
        assert result.strategy == "pruned"
        assert "backchase[pruned]" in result.report()
        assert "candidates explored" in result.report()
