"""Unit tests for the PC query AST."""

import pytest

from repro.errors import QueryValidationError
from repro.query.ast import Binding, Eq, PathOutput, PCQuery, StructOutput, fresh_var_namer
from repro.query.parser import parse_query
from repro.query.paths import Attr, Const, SName, Var


def q(text: str) -> PCQuery:
    return parse_query(text)


class TestValidation:
    def test_valid_query(self):
        query = q("select struct(A = r.A) from R r")
        query.validate()

    def test_duplicate_binding_var(self):
        query = PCQuery.make(
            Var("r"),
            [("r", SName("R")), ("r", SName("S"))],
        )
        with pytest.raises(QueryValidationError):
            query.validate()

    def test_forward_reference_rejected(self):
        query = PCQuery.make(
            Var("r"),
            [("s", Attr(Var("r"), "X")), ("r", SName("R"))],
        )
        with pytest.raises(QueryValidationError):
            query.validate()

    def test_unbound_output_var(self):
        query = PCQuery.make(Var("zzz"), [("r", SName("R"))])
        with pytest.raises(QueryValidationError):
            query.validate()

    def test_unbound_condition_var(self):
        query = PCQuery.make(
            Var("r"),
            [("r", SName("R"))],
            [(Var("r"), Var("nope"))],
        )
        with pytest.raises(QueryValidationError):
            query.validate()


class TestStructure:
    def test_binding_vars_and_lookup(self):
        query = q("select struct(A = r.A) from R r, S s where r.B = s.B")
        assert query.binding_vars() == ("r", "s")
        assert query.binding_of("s").source == SName("S")
        with pytest.raises(QueryValidationError):
            query.binding_of("zzz")

    def test_schema_names(self):
        query = q("select struct(A = r.A) from R r, dom(I) i where I[i] = r")
        assert query.schema_names() == frozenset({"R", "I"})

    def test_size(self):
        query = q("select struct(A = r.A) from R r, S s where r.B = s.B")
        assert query.size() == 3


class TestTransformations:
    def test_substitute(self):
        query = q("select struct(A = r.A) from R r where r.B = 5")
        result = query.substitute({"r": Var("x")})
        assert "x.A" in str(result)
        assert "x.B" in str(result)

    def test_rename_vars(self):
        query = q("select struct(A = r.A) from R r, S s where r.B = s.B")
        renamed = query.rename_vars({"r": "u"})
        assert renamed.binding_vars() == ("u", "s")
        assert "u.B = s.B" in str(renamed)

    def test_without_binding(self):
        query = q("select struct(A = r.A) from R r, S s")
        assert q("select struct(A = r.A) from R r, S s").without_binding(
            "s"
        ).binding_vars() == ("r",)

    def test_with_fresh_conditions_dedupes(self):
        query = q("select struct(A = r.A) from R r where r.B = 5")
        cond = Eq(Attr(Var("r"), "B"), Const(5))
        assert query.with_fresh_conditions([cond]) is query
        flipped = Eq(Const(5), Attr(Var("r"), "B"))
        assert query.with_fresh_conditions([flipped]) is query

    def test_with_bindings(self):
        query = q("select struct(A = r.A) from R r")
        extended = query.with_bindings([Binding("s", SName("S"))])
        assert extended.binding_vars() == ("r", "s")


class TestCanonicalization:
    def test_canonical_renames_by_order(self):
        a = q("select struct(A = r.A) from R r, S s where r.B = s.B")
        b = q("select struct(A = x.A) from R x, S y where y.B = x.B")
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_distinguishes_structure(self):
        a = q("select struct(A = r.A) from R r")
        b = q("select struct(A = r.A) from S r")
        assert a.canonical_key() != b.canonical_key()

    def test_canonical_key_cached(self):
        query = q("select struct(A = r.A) from R r")
        assert query.canonical_key() is query.canonical_key()


class TestOutputs:
    def test_struct_output_fields(self):
        out = StructOutput((("A", Var("x")),))
        assert out.paths() == (Var("x"),)
        assert "A = x" in str(out)

    def test_path_output(self):
        out = PathOutput(Attr(Var("x"), "C"))
        assert str(out) == "x.C"

    def test_make_from_tuples(self):
        query = PCQuery.make(
            [("A", Var("r"))],
            [("r", SName("R"))],
            [(Attr(Var("r"), "B"), Const(1))],
        )
        query.validate()
        assert isinstance(query.output, StructOutput)


class TestFreshNames:
    def test_fresh_var_namer_avoids_used(self):
        query = q("select struct(A = _x0.A) from R _x0")
        namer = fresh_var_namer(query)
        assert next(namer) == "_x1"
        assert next(namer) == "_x2"
