"""Unit tests for plan normalization and refinement."""

import pytest

from repro.chase.chase import ChaseEngine
from repro.chase.containment import is_equivalent
from repro.optimizer.refine import (
    nonfailing_refinement,
    normalize_plan,
    prune_conditions,
)
from repro.query.parser import parse_constraint, parse_query
from repro.query.paths import NFLookup


def q(text):
    return parse_query(text)


class TestNormalizePlan:
    def test_output_representative_minimized(self):
        query = q(
            "select struct(N = I[i].PDept) from Proj p, dom(I) i "
            "where i = p.PName and I[i].PDept = p.PDept"
        )
        normalized = normalize_plan(query)
        assert "p.PDept" in str(normalized.output)

    def test_equal_plans_converge(self):
        a = q("select struct(A = r.A) from R r, S s where r.B = s.B")
        b = q("select struct(A = r.A) from R r, S s where s.B = r.B")
        assert (
            normalize_plan(a).canonical_key() == normalize_plan(b).canonical_key()
        )

    def test_binding_source_not_replaced_by_var(self):
        query = q("select struct(A = r.A) from R r, S s where r.B = s.B")
        normalized = normalize_plan(query)
        from repro.query.paths import SName

        assert normalized.binding_of("r").source == SName("R")


class TestPruneConditions:
    def test_deps_implied_condition_dropped(self):
        pi1 = parse_constraint(
            "forall (p in Proj) -> exists (i in dom(I)) i = p.PName and I[i] = p",
            "PI1",
        )
        query = q(
            'select struct(PN = p.PName) from Proj p '
            'where p.CustName = "C" and I[p.PName] = p'
        )
        pruned = prune_conditions(query, [pi1])
        assert len(pruned.conditions) == 1
        assert "I[" not in str(pruned)

    def test_needed_conditions_kept(self):
        query = q("select struct(A = r.A) from R r, S s where r.B = s.B")
        pruned = prune_conditions(query, [])
        assert len(pruned.conditions) == 1

    def test_result_equivalent(self):
        pi1 = parse_constraint(
            "forall (p in Proj) -> exists (i in dom(I)) i = p.PName and I[i] = p",
            "PI1",
        )
        query = q(
            'select struct(PN = p.PName) from Proj p where I[p.PName] = p'
        )
        pruned = prune_conditions(query, [pi1])
        assert is_equivalent(pruned, query, [pi1])


class TestNonFailingRefinement:
    def test_p3_shape(self):
        """dom(SI) k, SI[k] t, k = "CitiBank"  →  SI{"CitiBank"} t."""

        query = q(
            "select struct(PN = t.PName) from dom(SI) k, SI[k] t "
            'where k = "CitiBank"'
        )
        refined = nonfailing_refinement(query)
        assert refined is not None
        assert refined.binding_vars() == ("t",)
        source = refined.binding_of("t").source
        assert isinstance(source, NFLookup)
        assert str(source) == 'SI{"CitiBank"}'

    def test_key_from_other_variable(self):
        """The section 4 shape: IS{r'.B} with the key from another binding."""

        query = q(
            "select struct(C = t.C) from R r, dom(IS) k, IS[k] t where k = r.B"
        )
        refined = nonfailing_refinement(query)
        assert refined is not None
        assert "IS{r.B}" in str(refined)

    def test_guard_without_replacement_kept(self):
        query = q("select struct(PN = t.PName) from dom(SI) k, SI[k] t")
        assert nonfailing_refinement(query) is None

    def test_guard_var_in_output_rewritten(self):
        query = q(
            "select struct(K = k, PN = t.PName) from dom(SI) k, SI[k] t "
            'where k = "C"'
        )
        refined = nonfailing_refinement(query)
        assert refined is not None
        assert '"C"' in str(refined.output)

    def test_unsafe_condition_occurrence_blocks(self):
        # I[k] also appears in a condition: eliminating the guard would make
        # the condition's lookup failing for absent keys.
        query = q(
            "select struct(PN = t.PName) from dom(SI) k, SI[k] t, Proj p "
            'where k = "C" and SI[k] = SI[p.CustName]'
        )
        refined = nonfailing_refinement(query)
        assert refined is None

    def test_no_dependent_binding_blocks(self):
        # guard never feeds a binding source: nothing to propagate emptiness
        query = q(
            'select struct(K = k) from dom(SI) k, Proj p where k = "C"'
        )
        assert nonfailing_refinement(query) is None

    def test_semantics_preserved_on_instance(self):
        from repro.model.instance import Instance
        from repro.model.values import DictValue, Row
        from repro.query.evaluator import evaluate

        query = q(
            "select struct(PN = t.PName) from dom(SI) k, SI[k] t "
            'where k = "CitiBank"'
        )
        refined = nonfailing_refinement(query)
        with_key = Instance(
            {"SI": DictValue({"CitiBank": frozenset({Row(PName="P1")})})}
        )
        without_key = Instance(
            {"SI": DictValue({"Acme": frozenset({Row(PName="P2")})})}
        )
        for inst in (with_key, without_key):
            assert evaluate(query, inst) == evaluate(refined, inst)
