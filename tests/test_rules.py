"""Unit tests for the rule-based optimizer (section 3's implementation)."""

import pytest

from repro.errors import OptimizationError
from repro.optimizer.rules import (
    BackchaseRule,
    ChaseRule,
    RuleBasedOptimizer,
    SearchStats,
)
from repro.optimizer.statistics import Statistics
from repro.query.parser import parse_constraint, parse_query


def q(text):
    return parse_query(text)


@pytest.fixture
def view_deps():
    return [
        parse_constraint(
            "forall (r in R, s in S) where r.B = s.B -> exists (v in V) "
            "v.A = r.A and v.C = s.C",
            "cV",
        ),
        parse_constraint(
            "forall (v in V) -> exists (r in R, s in S) r.B = s.B and "
            "v.A = r.A and v.C = s.C",
            "cV'",
        ),
    ]


class TestRules:
    def test_chase_rule_steps_once(self, view_deps):
        rule = ChaseRule(view_deps)
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        results = list(rule.apply(query))
        assert len(results) == 1
        assert "V" in results[0].schema_names()

    def test_chase_rule_empty_at_fixpoint(self, view_deps):
        rule = ChaseRule(view_deps)
        query = q(
            "select struct(A = v.A, C = v.C) from R r, S s, V v "
            "where r.B = s.B and v.A = r.A and v.C = s.C"
        )
        assert list(rule.apply(query)) == []

    def test_backchase_rule_yields_candidates(self, view_deps):
        rule = BackchaseRule(view_deps)
        saturated = RuleBasedOptimizer(view_deps).saturate(
            q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        )
        candidates = list(rule.apply(saturated))
        assert candidates
        sizes = {len(c.bindings) for c in candidates}
        assert all(s == len(saturated.bindings) - 1 for s in sizes)


class TestStrategies:
    def test_exhaustive_matches_algorithm1(self, view_deps):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        opt = RuleBasedOptimizer(view_deps, strategy="exhaustive")
        ranked = opt.search(query)
        keys = {plan.canonical_key() for plan, _ in ranked}
        # both the base join and the view-only plan are normal forms
        assert query.canonical_key() in keys
        assert any("V" in plan.schema_names() and len(plan.bindings) == 1
                   for plan, _ in ranked)

    def test_beam_prunes(self, view_deps):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        stats_full = SearchStats()
        RuleBasedOptimizer(view_deps, strategy="exhaustive").search(query, stats_full)
        stats_beam = SearchStats()
        RuleBasedOptimizer(
            view_deps, strategy="beam", beam_width=1
        ).search(query, stats_beam)
        assert stats_beam.expanded <= stats_full.expanded

    def test_greedy_finds_cheap_view_plan(self, view_deps):
        stats = Statistics()
        stats.set_card("R", 1000).set_card("S", 1000).set_card("V", 10)
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        opt = RuleBasedOptimizer(view_deps, statistics=stats, strategy="greedy")
        best, cost = opt.best(query)
        assert best.schema_names() == frozenset({"V"})

    def test_chase_precedence(self, view_deps):
        # saturate must run before any backchase: the search on a
        # chase-unsaturated query still reaches the view plan.
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        opt = RuleBasedOptimizer(view_deps)
        ranked = opt.search(query)
        assert any("V" in plan.schema_names() for plan, _ in ranked)

    def test_unknown_strategy_rejected(self, view_deps):
        with pytest.raises(OptimizationError):
            RuleBasedOptimizer(view_deps, strategy="bogus")

    def test_node_budget(self, view_deps):
        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        opt = RuleBasedOptimizer(view_deps, max_nodes=0)
        with pytest.raises(OptimizationError):
            opt.search(query)


class TestAgainstAlgorithm1:
    def test_same_minimal_set_as_backchase(self, view_deps):
        from repro.backchase.backchase import minimal_subqueries
        from repro.chase.chase import chase

        query = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        universal = chase(query, view_deps).query
        direct = {f.canonical_key() for f in minimal_subqueries(universal, view_deps)}
        rule_based = {
            plan.canonical_key()
            for plan, _ in RuleBasedOptimizer(view_deps).search(query)
        }
        assert direct == rule_based
