"""Unit tests for schemas and instances."""

import pytest

from repro.errors import InstanceError, SchemaError
from repro.model.instance import Instance
from repro.model.schema import Schema
from repro.model.types import INT, STRING, SetType, relation, struct
from repro.model.values import DictValue, Oid, Row


class TestSchema:
    def test_add_and_lookup(self):
        s = Schema("t").add("R", relation(A=INT))
        assert "R" in s
        assert s.type_of("R") == relation(A=INT)

    def test_duplicate_name_rejected(self):
        s = Schema("t").add("R", relation(A=INT))
        with pytest.raises(SchemaError):
            s.add("R", relation(A=STRING))

    def test_unknown_name_raises(self):
        with pytest.raises(SchemaError):
            Schema("t").type_of("missing")

    def test_remove(self):
        s = Schema("t").add("R", relation(A=INT))
        s.remove("R")
        assert "R" not in s
        with pytest.raises(SchemaError):
            s.remove("R")

    def test_add_class_registers_extent(self):
        s = Schema("t")
        info = s.add_class("Dept", "depts", struct(DName=STRING))
        assert "depts" in s
        assert isinstance(s.type_of("depts"), SetType)
        assert s.class_info("Dept") is info
        assert s.oid_attr_type(info.oid_type, "DName") == STRING

    def test_duplicate_class_rejected(self):
        s = Schema("t")
        s.add_class("Dept", "depts", struct(DName=STRING))
        with pytest.raises(SchemaError):
            s.add_class("Dept", "depts2", struct(DName=STRING))

    def test_union_merges_names(self):
        a = Schema("a").add("R", relation(A=INT))
        b = Schema("b").add("S", relation(B=INT))
        merged = a.union(b)
        assert "R" in merged and "S" in merged

    def test_union_shared_name_must_agree(self):
        a = Schema("a").add("R", relation(A=INT))
        b = Schema("b").add("R", relation(A=INT))
        merged = a.union(b)
        assert "R" in merged
        c = Schema("c").add("R", relation(A=STRING))
        with pytest.raises(SchemaError):
            a.union(c)


class TestInstance:
    def test_get_set(self):
        inst = Instance({"R": frozenset()})
        assert inst["R"] == frozenset()
        inst["S"] = frozenset({Row(A=1)})
        assert "S" in inst

    def test_missing_name_raises(self):
        with pytest.raises(InstanceError):
            Instance()["missing"]

    def test_class_registry_and_deref(self):
        oid = Oid("Dept", 0)
        inst = Instance({"Dept": DictValue({oid: Row(DName="D0")})})
        inst.register_class("Dept", "Dept")
        assert inst.deref(oid) == Row(DName="D0")

    def test_register_class_requires_dict_value(self):
        inst = Instance()
        with pytest.raises(InstanceError):
            inst.register_class("Dept", "missing")

    def test_dangling_oid(self):
        inst = Instance({"Dept": DictValue({})})
        inst.register_class("Dept", "Dept")
        with pytest.raises(InstanceError):
            inst.deref(Oid("Dept", 9))

    def test_validate_reports_missing_and_mistyped(self):
        schema = Schema("t").add("R", relation(A=INT)).add("S", relation(B=INT))
        inst = Instance({"R": frozenset({Row(A="oops")})})
        problems = inst.validate(schema)
        assert any("S" in p for p in problems)
        assert any("expected int" in p for p in problems)

    def test_validate_clean(self):
        schema = Schema("t").add("R", relation(A=INT))
        inst = Instance({"R": frozenset({Row(A=1)})})
        assert inst.validate(schema) == []

    def test_copy_is_independent(self):
        inst = Instance({"R": frozenset()})
        clone = inst.copy()
        clone["R"] = frozenset({Row(A=1)})
        assert inst["R"] == frozenset()
