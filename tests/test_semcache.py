"""Unit tests for the semantic result cache (repro.semcache)."""

from __future__ import annotations

import pytest

from repro import (
    Instance,
    ReproDeprecationWarning,
    Row,
    Statistics,
    evaluate,
    parse_query,
)
from repro.chase.cache import ContainmentCache
from repro.chase.chase import ChaseEngine
from repro.optimizer.cost import CostModel
from repro.optimizer.optimizer import Optimizer
from repro.query.parser import parse_constraint
from repro.semcache import (
    COLD,
    EXACT,
    HYBRID,
    REWRITE,
    CachedSession,
    CostBenefitPolicy,
    InvalidationIndex,
    SemanticCache,
    make_cached_view,
    view_definition,
    view_extent,
)


@pytest.fixture
def rs_instance_large() -> Instance:
    r = frozenset(Row(A=i, B=i % 7) for i in range(40))
    s = frozenset(Row(B=i % 7, C=i) for i in range(30))
    return Instance({"R": r, "S": s})


@pytest.fixture
def session(rs_instance_large) -> CachedSession:
    # View-only mode: these tests pin the all-or-nothing rewrite tier's
    # contract (a hit reads cached extents exclusively).  Hybrid mode has
    # its own class below and the differential harness in
    # test_prop_hybrid.py.
    sess = CachedSession(
        rs_instance_large,
        statistics=Statistics.from_instance(rs_instance_large),
        hybrid=False,
    )
    yield sess
    sess.close()


JOIN = "select struct(A = r.A, B = s.B, C = s.C) from R r, S s where r.B = s.B"
CONTAINED = (
    "select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B and s.C = 3"
)


class TestViewCapture:
    def test_struct_query_is_its_own_definition(self):
        q = parse_query(JOIN)
        assert view_definition(q) is q

    def test_path_query_wraps_value_field(self):
        q = parse_query("select r.A from R r where r.B = 5")
        definition = view_definition(q)
        assert [name for name, _ in definition.output.fields] == ["value"]
        extent = view_extent(q, frozenset({1, 2}))
        assert extent == frozenset({Row(value=1), Row(value=2)})

    def test_cached_view_derives_constraint_pair(self):
        view = make_cached_view("_SC1", parse_query(JOIN), frozenset(), 1)
        names = [c.name for c in view.constraints]
        assert names == ["_SC1_cv", "_SC1_cv'"]
        assert view.sources == frozenset({"R", "S"})

    def test_plan_only_view(self):
        view = make_cached_view("_SC1", parse_query(JOIN), None, 1)
        assert view.plan_only and view.tuples() == 0


class TestSessionPaths:
    def test_cold_then_exact(self, session, rs_instance_large):
        q = parse_query(JOIN)
        first = session.run(q)
        assert first.source == COLD
        assert first.results == evaluate(q, rs_instance_large)
        again = session.run(q)
        assert again.source == EXACT
        assert again.results == first.results
        assert again.view_names

    def test_contained_query_rewrites_onto_cache(self, session, rs_instance_large):
        session.run(parse_query(JOIN))
        result = session.run(parse_query(CONTAINED))
        assert result.source == REWRITE
        assert result.results == evaluate(parse_query(CONTAINED), rs_instance_large)
        # the plan reads only cache-owned names
        assert all(name.startswith("_SC") for name in result.view_names)

    def test_rewrite_promotes_to_exact(self, session):
        session.run(parse_query(JOIN))
        assert session.run(parse_query(CONTAINED)).source == REWRITE
        assert session.run(parse_query(CONTAINED)).source == EXACT

    def test_uncachable_query_stays_cold(self, session, rs_instance_large):
        session.run(parse_query(JOIN))
        # projects an attribute combination the cached view cannot supply a
        # proof for under no base constraints: different relation T is absent,
        # so use a fresh selection on R alone (not contained in the join).
        q = parse_query("select struct(A = r.A, B = r.B) from R r")
        result = session.run(q)
        assert result.source == COLD
        assert result.results == evaluate(q, rs_instance_large)

    def test_disabled_session_is_plain_executor(self, rs_instance_large):
        sess = CachedSession(rs_instance_large, enabled=False)
        q = parse_query(JOIN)
        assert sess.run(q).source == COLD
        assert sess.run(q).source == COLD
        assert len(sess.cache) == 0

    def test_stats_counters_add_up(self, session):
        session.run(parse_query(JOIN))          # cold
        session.run(parse_query(JOIN))          # exact
        session.run(parse_query(CONTAINED))     # rewrite
        stats = session.stats
        assert stats.lookups == 3
        assert stats.exact_hits == 1
        assert stats.rewrite_hits == 1
        assert stats.misses == 1
        assert stats.hits == 2
        assert 0.0 < stats.hit_rate() <= 1.0


class TestHybridSession:
    """The partial-hit tier: plans mixing cached extents and base data."""

    @pytest.fixture
    def big_instance(self) -> Instance:
        # R large enough that re-scanning it estimates (and is) costlier
        # than scanning a small cached selection of it.
        r = frozenset(Row(A=i % 50, B=i % 7) for i in range(400))
        s = frozenset(Row(B=i % 7, C=i) for i in range(90))
        return Instance({"R": r, "S": s})

    WARM = "select struct(A = r.A, B = r.B) from R r where r.A = 1"
    PARTIAL = (
        "select struct(A = r.A, C = s.C) from R r, S s "
        "where r.B = s.B and r.A = 1"
    )

    def _session(self, instance, **options) -> CachedSession:
        return CachedSession(
            instance, statistics=Statistics.from_instance(instance), **options
        )

    def test_partial_overlap_served_hybrid(self, big_instance):
        with self._session(big_instance) as sess:
            assert sess.run(parse_query(self.WARM)).source == COLD
            got = sess.run(parse_query(self.PARTIAL))
            assert got.source == HYBRID
            assert got.results == evaluate(parse_query(self.PARTIAL), big_instance)
            assert got.view_names and all(
                name.startswith("_SC") for name in got.view_names
            )
            assert "S" in got.base_names  # the uncovered base relation
            assert "[cached]" in got.plan_text
            assert sess.stats.hybrid_hits == 1
            assert sess.stats.rewrite_hits == 0
            assert sess.stats.benefit_accrued > 0.0

    def test_view_only_mode_misses_partial_overlap(self, big_instance):
        with self._session(big_instance, hybrid=False) as sess:
            sess.run(parse_query(self.WARM))
            got = sess.run(parse_query(self.PARTIAL))
            assert got.source == COLD
            assert sess.stats.hybrid_hits == 0

    def test_hybrid_promotes_to_exact(self, big_instance):
        with self._session(big_instance) as sess:
            sess.run(parse_query(self.WARM))
            assert sess.run(parse_query(self.PARTIAL)).source == HYBRID
            assert sess.run(parse_query(self.PARTIAL)).source == EXACT

    def test_base_mutation_never_serves_stale_hybrid(self, big_instance):
        with self._session(big_instance) as sess:
            sess.run(parse_query(self.WARM))
            assert sess.run(parse_query(self.PARTIAL)).source == HYBRID
            # mutate the base relation the hybrid plan reads directly: the
            # promoted exact entry must drop (it depends on S), while the
            # sigma(R) view survives and serves a fresh hybrid answer
            # against the live S.
            big_instance["S"] = frozenset(
                Row(B=i % 7, C=i + 1000) for i in range(90)
            )
            got = sess.run(parse_query(self.PARTIAL))
            assert got.source in (HYBRID, COLD)
            assert got.results == evaluate(
                parse_query(self.PARTIAL), big_instance
            )
            assert all(row["C"] >= 1000 for row in got.results)

    def test_rewrite_carries_benefit_and_base_names(self, big_instance):
        cache = SemanticCache(statistics=Statistics.from_instance(big_instance))
        warm = parse_query(self.WARM)
        cache.register(warm, evaluate(warm, big_instance))
        rewrite = cache.plan_rewrite(
            parse_query(self.PARTIAL),
            base_names=frozenset(big_instance.names()),
        )
        assert rewrite is not None and rewrite.hybrid
        assert rewrite.base_names() == frozenset({"S"})
        assert rewrite.benefit > 0.0
        assert rewrite.cold_cost > rewrite.result.best.cost
        view = rewrite.views[0]
        assert view.benefit == pytest.approx(rewrite.benefit)

    def test_view_only_filter_unchanged_without_base_names(self, big_instance):
        cache = SemanticCache(statistics=Statistics.from_instance(big_instance))
        warm = parse_query(self.WARM)
        cache.register(warm, evaluate(warm, big_instance))
        assert cache.plan_rewrite(parse_query(self.PARTIAL)) is None
        assert cache.stats.hybrid_hits == 0


class TestInvalidation:
    def test_mutation_drops_dependent_views(self, session, rs_instance_large):
        q = parse_query(JOIN)
        session.run(q)
        assert len(session.cache) == 1
        rs_instance_large["R"] = frozenset(Row(A=99, B=0) for _ in range(1))
        assert len(session.cache) == 0
        assert session.stats.invalidations == 1
        fresh = session.run(q)
        assert fresh.source == COLD
        assert fresh.results == evaluate(q, rs_instance_large)

    def test_unrelated_mutation_keeps_views(self, session, rs_instance_large):
        session.run(parse_query("select struct(C = s.C) from S s"))
        rs_instance_large["R"] = frozenset()
        assert len(session.cache) == 1
        assert session.stats.invalidations == 0

    def test_closed_session_stops_listening(self, session, rs_instance_large):
        session.run(parse_query(JOIN))
        session.close()
        rs_instance_large["R"] = frozenset()
        # no longer subscribed: the (now stale-able) view survives untouched
        assert len(session.cache) == 1

    def test_class_dict_mutation_invalidates_deref_views(self):
        """Queries that dereference oids depend on the class dictionary
        even though it never appears syntactically (review regression)."""

        from repro.workloads.projdept import build_projdept

        wl = build_projdept(n_depts=2, projs_per_dept=2, seed=1)
        q = parse_query("select struct(DN = d.DName) from depts d")
        with CachedSession(wl.instance) as sess:
            first = sess.run(q)
            assert first.source == COLD
            view = sess.cache.views()[0]
            assert "Dept" in view.dependencies
            assert "Dept" not in view.sources  # relevance stays syntactic
            # mutate the class dictionary the query reads through oids
            from repro.model.values import DictValue, Oid, Row as VRow

            wl.instance["Dept"] = DictValue(
                {
                    oid: VRow(
                        DName="RENAMED",
                        DProjs=row["DProjs"],
                        MgrName=row["MgrName"],
                    )
                    for oid, row in wl.instance["Dept"].items()
                }
            )
            assert len(sess.cache) == 0
            assert sess.stats.invalidations == 1
            fresh = sess.run(q)
            assert fresh.source == COLD
            assert fresh.results == evaluate(q, wl.instance)
            assert all(row["DN"] == "RENAMED" for row in fresh.results)

    def test_invalidation_index_bookkeeping(self):
        index = InvalidationIndex()
        view = make_cached_view("_SC1", parse_query(JOIN), frozenset(), 1)
        index.add(view)
        assert index.dependents("R") == {"_SC1"}
        assert index.dependents("S") == {"_SC1"}
        index.remove(view)
        assert index.dependents("R") == frozenset()
        assert len(index) == 0


class TestEviction:
    def test_max_views_bound_enforced(self, rs_instance_large):
        sess = CachedSession(
            rs_instance_large,
            statistics=Statistics.from_instance(rs_instance_large),
            policy=CostBenefitPolicy(max_views=2, max_total_tuples=10_000),
        )
        for const in (0, 1, 2, 3):
            sess.run(parse_query(f"select struct(A = r.A) from R r where r.B = {const}"))
        assert len(sess.cache) <= 2
        assert sess.stats.evictions >= 2
        sess.close()

    def test_hot_views_survive(self, rs_instance_large):
        sess = CachedSession(
            rs_instance_large,
            statistics=Statistics.from_instance(rs_instance_large),
            policy=CostBenefitPolicy(max_views=2, max_total_tuples=10_000),
        )
        hot = parse_query(JOIN)
        sess.run(hot)
        for _ in range(5):
            sess.run(hot)  # exact hits make it sticky
        sess.run(parse_query("select struct(C = s.C) from S s where s.B = 1"))
        sess.run(parse_query("select struct(C = s.C) from S s where s.B = 2"))
        surviving = {v.query.canonical_key() for v in sess.cache.views()}
        assert hot.canonical_key() in surviving
        sess.close()

    def test_tuple_budget_keeps_newest(self):
        instance = Instance({"R": frozenset(Row(A=i, B=0) for i in range(50))})
        sess = CachedSession(
            instance,
            statistics=Statistics.from_instance(instance),
            policy=CostBenefitPolicy(max_views=10, max_total_tuples=60),
        )
        sess.run(parse_query("select struct(A = r.A) from R r"))          # 50 tuples
        sess.run(parse_query("select struct(A = r.A, B = r.B) from R r"))  # 50 more
        assert sess.cache.total_tuples() <= 60
        assert len(sess.cache) == 1
        sess.close()


class TestPolicyEdgeCases:
    """Direct coverage of CostBenefitPolicy: deterministic tie-breaks and
    degenerate (zero/negative) budgets, previously only reached through
    the property harnesses."""

    def _view(self, name, text, n_tuples, registered_at, hits=0, benefit=0.0):
        view = make_cached_view(
            name,
            parse_query(text),
            frozenset(Row(A=i) for i in range(n_tuples)),
            registered_at=registered_at,
        )
        view.hits = hits
        view.benefit = benefit
        return view

    def _stats(self):
        return Statistics().set_card("R", 500).set_card("S", 500)

    def test_equal_scores_evict_oldest_first(self):
        policy = CostBenefitPolicy(max_views=1, max_total_tuples=10_000)
        old = self._view("_SC1", "select struct(A = r.A) from R r where r.B = 1", 5, 1)
        new = self._view("_SC2", "select struct(A = r.A) from R r where r.B = 2", 5, 2)
        views = {"_SC2": new, "_SC1": old}  # insertion order must not matter
        stats, model = self._stats(), CostModel()
        assert policy.score(old, stats, model) == policy.score(new, stats, model)
        assert policy.victims(views, stats, model) == ["_SC1"]

    def test_hits_break_otherwise_equal_scores(self):
        policy = CostBenefitPolicy(max_views=1, max_total_tuples=10_000)
        hot_old = self._view(
            "_SC1", "select struct(A = r.A) from R r where r.B = 1", 5, 1, hits=3
        )
        cold_new = self._view(
            "_SC2", "select struct(A = r.A) from R r where r.B = 2", 5, 2
        )
        victims = policy.victims(
            {"_SC1": hot_old, "_SC2": cold_new}, self._stats(), CostModel()
        )
        assert victims == ["_SC2"]  # demand outweighs age

    def test_observed_benefit_makes_views_sticky(self):
        policy = CostBenefitPolicy(max_views=1, max_total_tuples=10_000)
        earner_old = self._view(
            "_SC1", "select struct(A = r.A) from R r where r.B = 1", 5, 1,
            benefit=250.0,
        )
        idle_new = self._view(
            "_SC2", "select struct(A = r.A) from R r where r.B = 2", 5, 2
        )
        victims = policy.victims(
            {"_SC1": earner_old, "_SC2": idle_new}, self._stats(), CostModel()
        )
        assert victims == ["_SC2"]  # accrued hybrid benefit outweighs age

    def test_stale_and_plan_only_evicted_before_live_data(self):
        policy = CostBenefitPolicy(max_views=2, max_total_tuples=10_000)
        live = self._view("_SC1", "select struct(A = r.A) from R r where r.B = 1", 5, 1)
        stale = self._view("_SC2", "select struct(A = r.A) from R r where r.B = 2", 5, 2)
        stale.stale = True
        plan_only = make_cached_view(
            "_SC3", parse_query("select struct(A = r.A) from R r where r.B = 3"),
            None, registered_at=3,
        )
        victims = policy.victims(
            {"_SC1": live, "_SC2": stale, "_SC3": plan_only},
            self._stats(), CostModel(),
        )
        assert victims == ["_SC2"]  # zero-scorers go first, oldest first
        assert "_SC1" not in victims

    def test_zero_view_budget_keeps_exactly_the_newest(self):
        policy = CostBenefitPolicy(max_views=0, max_total_tuples=10_000)
        views = {
            f"_SC{i}": self._view(
                f"_SC{i}", f"select struct(A = r.A) from R r where r.B = {i}", 4, i
            )
            for i in (1, 2, 3)
        }
        victims = policy.victims(views, self._stats(), CostModel())
        # never empties the pool: one survivor even at budget zero
        assert len(victims) == 2
        assert set(victims) == {"_SC1", "_SC2"}

    def test_zero_tuple_budget_keeps_single_oversized_view(self):
        policy = CostBenefitPolicy(max_views=10, max_total_tuples=0)
        big = self._view("_SC1", "select struct(A = r.A) from R r", 50, 1)
        assert policy.victims({"_SC1": big}, self._stats(), CostModel()) == []

    def test_zero_budget_cache_end_to_end(self, rs_instance_large):
        """A session under a zero-view budget still answers correctly and
        holds at most one view."""

        sess = CachedSession(
            rs_instance_large,
            statistics=Statistics.from_instance(rs_instance_large),
            policy=CostBenefitPolicy(max_views=0, max_total_tuples=0),
        )
        for const in (0, 1, 2):
            q = parse_query(
                f"select struct(A = r.A) from R r where r.B = {const}"
            )
            assert sess.run(q).results == evaluate(q, rs_instance_large)
        assert len(sess.cache) <= 1
        assert sess.stats.evictions >= 2
        sess.close()


class TestSemanticCacheUnit:
    def test_register_rejects_duplicates(self):
        cache = SemanticCache()
        q = parse_query(JOIN)
        assert cache.register(q, frozenset()) is not None
        assert cache.register(q, frozenset()) is None
        assert cache.stats.rejected == 1

    def test_register_rejects_cache_owned_names(self):
        cache = SemanticCache()
        q = parse_query("select struct(A = v.A) from _SC1 v")
        assert cache.register(q, frozenset()) is None

    def test_plan_only_rewrite_not_executable(self):
        cache = SemanticCache()
        cache.register(parse_query(JOIN))  # no results: plan-only
        rewrite = cache.plan_rewrite(parse_query(CONTAINED))
        assert rewrite is not None
        assert not rewrite.executable
        assert rewrite.view_names()

    def test_require_executable_skips_plan_only_without_phantom_hit(
        self, rs_instance_large
    ):
        """A session sharing a cache with plan-only entries serves cold and
        counts exactly one miss — never a rewrite hit it didn't serve
        (review regression)."""

        cache = SemanticCache(statistics=Statistics.from_instance(rs_instance_large))
        cache.register(parse_query(JOIN))  # plan-only
        assert cache.plan_rewrite(
            parse_query(CONTAINED), require_executable=True
        ) is None
        assert cache.stats.rewrite_hits == 0
        assert cache.get(cache.views()[0].name).hits == 0

        with CachedSession(rs_instance_large, cache=cache) as sess:
            result = sess.run(parse_query(CONTAINED))
            assert result.source == COLD
            assert result.results == evaluate(
                parse_query(CONTAINED), rs_instance_large
            )
        assert cache.stats.rewrite_hits == 0
        assert cache.stats.misses == 1
        assert cache.stats.hits + cache.stats.misses <= cache.stats.lookups

    def test_irrelevant_views_are_not_injected(self):
        cache = SemanticCache()
        cache.register(
            parse_query("select struct(A = t.A) from T t"), frozenset()
        )
        assert cache.candidate_views(parse_query(JOIN)) == []
        assert cache.plan_rewrite(parse_query(JOIN)) is None

    def test_rewrite_statistics_use_extent_cardinality(self):
        cache = SemanticCache(statistics=Statistics().set_card("R", 500))
        view = cache.register(
            parse_query("select struct(A = r.A) from R r"),
            frozenset(Row(A=i) for i in range(7)),
        )
        stats = cache._rewrite_statistics([view])
        assert stats.card(view.name) == 7.0
        assert stats.card("R") == 500.0
        # the cache's own statistics are untouched
        assert view.name not in cache.statistics.cardinality


class TestOptimizerEphemeral:
    """The ephemeral-kwargs path is a deprecation shim over
    ``OptimizeContext.override``: it must warn (the pytest gate escalates
    a silent use to an error) and keep its exact old semantics."""

    def test_extra_constraints_shim_warns_and_does_not_mutate(self):
        opt = Optimizer([], strategy="pruned")
        dep = parse_constraint(
            "forall (r in R) -> exists (s in S) r.B = s.B", "ric"
        )
        q = parse_query("select struct(A = r.A) from R r")
        with pytest.warns(ReproDeprecationWarning):
            result = opt.optimize(q, extra_constraints=[dep])
        assert result.best is not None
        assert opt.constraints == []
        assert opt.physical_names is None

    def test_physical_override_shim_is_per_call(self):
        opt = Optimizer([], physical_names=("R",))
        q = parse_query("select struct(A = r.A) from R r")
        with pytest.warns(ReproDeprecationWarning):
            filtered = opt.optimize(q, physical_names=frozenset({"Z"}))
        assert not filtered.best.physical_only
        assert opt.optimize(q).best.physical_only

    def test_context_override_matches_shim(self):
        """The replacement path produces the same answer, warning-free."""

        dep = parse_constraint(
            "forall (r in R) -> exists (s in S) r.B = s.B", "ric"
        )
        q = parse_query("select struct(A = r.A) from R r")
        opt = Optimizer([], strategy="pruned")
        via_context = Optimizer(
            context=opt.context.override(extra_constraints=(dep,))
        ).optimize(q)
        with pytest.warns(ReproDeprecationWarning):
            via_shim = opt.optimize(q, extra_constraints=[dep])
        assert via_context.best.cost == via_shim.best.cost
        assert (
            via_context.best.query.canonical_key()
            == via_shim.best.query.canonical_key()
        )


class TestContainmentCacheLRU:
    def test_bound_and_eviction_order(self):
        cache = ContainmentCache(max_size=2)
        cache.put(("a", "a"), True)
        cache.put(("b", "b"), False)
        assert cache.get(("a", "a")) is True  # refreshes 'a'
        cache.put(("c", "c"), True)           # evicts 'b' (least recent)
        assert len(cache) == 2
        assert cache.get(("b", "b")) is None
        assert cache.get(("a", "a")) is True
        info = cache.cache_info()
        assert info.evictions == 1
        assert info.size == 2
        assert info.max_size == 2

    def test_unbounded_when_none(self):
        cache = ContainmentCache(max_size=None)
        for i in range(100):
            cache.put((str(i), str(i)), True)
        assert len(cache) == 100
        assert cache.cache_info().evictions == 0

    def test_clear_resets_counters(self):
        cache = ContainmentCache(max_size=1)
        cache.put(("a", "a"), True)
        cache.put(("b", "b"), True)
        cache.get(("b", "b"))
        cache.clear()
        info = cache.cache_info()
        assert (info.hits, info.misses, info.size, info.evictions) == (0, 0, 0, 0)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            ContainmentCache(max_size=0)

    def test_engine_exposes_cache_info_and_bound(self):
        engine = ChaseEngine([], containment_cache_size=3)
        assert engine.containment.max_size == 3
        assert engine.cache_info().size == 0
        default_engine = ChaseEngine([])
        assert default_engine.containment.max_size is not None
        unbounded = ChaseEngine([], containment_cache_size=None)
        assert unbounded.containment.max_size is None

    def test_eviction_only_recomputes_never_corrupts(self):
        """A bounded engine returns the same verdicts as an unbounded one."""

        deps = [
            parse_constraint(
                "forall (r in R) -> exists (s in S) r.B = s.B", "ric_rs"
            )
        ]
        bounded = ChaseEngine(deps, containment_cache_size=1)
        unbounded = ChaseEngine(deps)
        queries = [
            parse_query("select struct(A = r.A) from R r"),
            parse_query("select struct(A = r.A) from R r, S s where r.B = s.B"),
            parse_query("select struct(B = s.B) from S s"),
        ]
        for q1 in queries:
            for q2 in queries:
                assert bounded.contained_in(q1, q2) == unbounded.contained_in(q1, q2)
        # with bound 1 and 9 distinct pairs, evictions must have happened
        assert bounded.containment.evictions > 0
