"""Unit tests for the type system."""

import pytest

from repro.errors import SchemaError
from repro.model.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    BaseType,
    DictType,
    OidType,
    SetType,
    StructType,
    base_type,
    dict_of,
    iter_subtypes,
    python_base_type,
    relation,
    set_of,
    struct,
)


class TestConstructors:
    def test_struct_constructor_orders_fields(self):
        ty = struct(A=STRING, B=INT)
        assert ty.field_names() == ("A", "B")

    def test_struct_duplicate_field_rejected(self):
        with pytest.raises(SchemaError):
            StructType((("A", STRING), ("A", INT)))

    def test_relation_is_set_of_struct(self):
        ty = relation(A=INT, B=STRING)
        assert isinstance(ty, SetType)
        assert isinstance(ty.elem, StructType)
        assert ty.elem.field("B") == STRING

    def test_dict_of(self):
        ty = dict_of(STRING, set_of(INT))
        assert ty.key == STRING
        assert ty.value == SetType(INT)


class TestPredicates:
    def test_base_predicates(self):
        assert STRING.is_base()
        assert OidType("Dept").is_base()
        assert not set_of(INT).is_base()

    def test_set_struct_dict_predicates(self):
        assert set_of(INT).is_set()
        assert struct(A=INT).is_struct()
        assert dict_of(INT, INT).is_dict()


class TestFieldAccess:
    def test_field_lookup(self):
        ty = struct(X=INT, Y=FLOAT)
        assert ty.field("Y") == FLOAT
        assert ty.has_field("X")
        assert not ty.has_field("Z")

    def test_missing_field_raises(self):
        with pytest.raises(SchemaError):
            struct(X=INT).field("Y")


class TestBaseTypes:
    def test_base_type_canonical(self):
        assert base_type("string") is STRING
        assert base_type("int") is INT

    def test_base_type_custom(self):
        surrogate = base_type("surrogate")
        assert surrogate == BaseType("surrogate")

    def test_python_base_type(self):
        assert python_base_type(True) == BOOL
        assert python_base_type(3) == INT
        assert python_base_type(3.5) == FLOAT
        assert python_base_type("x") == STRING
        assert python_base_type([1]) is None

    def test_bool_is_not_int(self):
        # bool must map to BOOL despite being an int subclass
        assert python_base_type(False) == BOOL


class TestIterSubtypes:
    def test_iter_subtypes_nested(self):
        ty = dict_of(STRING, set_of(struct(A=INT)))
        found = list(iter_subtypes(ty))
        assert STRING in found
        assert INT in found
        assert set_of(struct(A=INT)) in found

    def test_oid_str(self):
        assert "Dept" in str(OidType("Dept"))


class TestEquality:
    def test_structural_equality(self):
        assert struct(A=INT) == struct(A=INT)
        assert struct(A=INT) != struct(A=STRING)
        assert dict_of(INT, INT) == DictType(INT, INT)

    def test_display(self):
        assert str(set_of(INT)) == "Set<int>"
        assert "Dict<" in str(dict_of(STRING, INT))
        assert "Struct{" in str(struct(A=INT))
