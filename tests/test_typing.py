"""Unit tests for query type checking and the PC restrictions."""

import pytest

from repro.errors import QueryValidationError
from repro.model.schema import Schema
from repro.model.types import (
    INT,
    STRING,
    DictType,
    SetType,
    dict_of,
    relation,
    set_of,
    struct,
)
from repro.query.parser import parse_query
from repro.query.typing import type_of_path, typecheck_query
from repro.query.parser import parse_path


@pytest.fixture
def schema():
    s = Schema("t")
    s.add("Proj", relation(PName=STRING, CustName=STRING, Budg=INT))
    s.add("I", dict_of(STRING, struct(PName=STRING, CustName=STRING, Budg=INT)))
    s.add("SI", dict_of(STRING, set_of(struct(PName=STRING, CustName=STRING, Budg=INT))))
    s.add_class("Dept", "depts", struct(DName=STRING, DProjs=SetType(STRING)))
    return s


class TestPathTyping:
    def test_sname(self, schema):
        assert type_of_path(parse_path("Proj"), schema, {}) == schema.type_of("Proj")

    def test_attr_on_struct(self, schema):
        row_type = schema.type_of("Proj").elem
        ty = type_of_path(parse_path("p.Budg", scope={"p"}), schema, {"p": row_type})
        assert ty == INT

    def test_attr_on_oid(self, schema):
        oid_type = schema.class_info("Dept").oid_type
        ty = type_of_path(parse_path("d.DName", scope={"d"}), schema, {"d": oid_type})
        assert ty == STRING

    def test_dom(self, schema):
        assert type_of_path(parse_path("dom(I)"), schema, {}) == SetType(STRING)

    def test_lookup(self, schema):
        env = {"k": STRING}
        ty = type_of_path(parse_path("SI[k]", scope={"k"}), schema, env)
        assert isinstance(ty, SetType)

    def test_lookup_into_non_dict_rejected(self, schema):
        with pytest.raises(QueryValidationError):
            type_of_path(parse_path("Proj[k]", scope={"k"}), schema, {"k": STRING})

    def test_nflookup_requires_set_entries(self, schema):
        with pytest.raises(QueryValidationError):
            type_of_path(parse_path('I{"x"}'), schema, {})

    def test_missing_field(self, schema):
        row_type = schema.type_of("Proj").elem
        with pytest.raises(QueryValidationError):
            type_of_path(parse_path("p.Nope", scope={"p"}), schema, {"p": row_type})


class TestQueryTyping:
    def test_paper_query_typechecks(self, schema):
        query = parse_query(
            "select struct(PN = s, PB = p.Budg, DN = d.DName) "
            "from depts d, d.DProjs s, Proj p "
            'where s = p.PName and p.CustName = "CitiBank"'
        )
        typed = typecheck_query(query, schema)
        assert typed.env["p"] == schema.type_of("Proj").elem

    def test_guarded_lookup_ok(self, schema):
        query = parse_query(
            "select struct(PN = t.PName) from dom(SI) k, SI[k] t"
        )
        typecheck_query(query, schema)

    def test_unguarded_lookup_rejected_strict(self, schema):
        query = parse_query(
            "select struct(B = I[p.PName].Budg) from Proj p"
        )
        with pytest.raises(QueryValidationError):
            typecheck_query(query, schema, strict=True)
        typecheck_query(query, schema, strict=False)  # plans allowed

    def test_nflookup_rejected_strict(self, schema):
        query = parse_query('select struct(PN = t.PName) from SI{"x"} t')
        with pytest.raises(QueryValidationError):
            typecheck_query(query, schema, strict=True)
        typecheck_query(query, schema, strict=False)

    def test_set_typed_equality_rejected(self, schema):
        query = parse_query(
            "select struct(N = d.DName) from depts d, depts e where d.DProjs = e.DProjs"
        )
        with pytest.raises(QueryValidationError):
            typecheck_query(query, schema, strict=True)
        typecheck_query(query, schema, strict=False)

    def test_collection_output_rejected_strict(self, schema):
        query = parse_query("select struct(S = d.DProjs) from depts d")
        with pytest.raises(QueryValidationError):
            typecheck_query(query, schema, strict=True)

    def test_binding_over_non_set_rejected(self, schema):
        query = parse_query("select struct(N = x) from dom(I) k, I[k] x")
        # I[k] is struct-valued, not a set
        with pytest.raises(QueryValidationError):
            typecheck_query(query, schema, strict=False)

    def test_ill_typed_equality_rejected(self, schema):
        query = parse_query(
            "select struct(N = d.DName) from depts d, Proj p where d = p"
        )
        with pytest.raises(QueryValidationError):
            typecheck_query(query, schema, strict=False)

    def test_record_equality_allowed(self, schema):
        # The paper's PI-style record equality I[i] = p
        query = parse_query(
            "select struct(PN = p.PName) from Proj p, dom(I) i "
            "where i = p.PName and I[i] = p"
        )
        typed = typecheck_query(query, schema, strict=True)
        assert typed.output_type is not None
