"""Tests for view unfolding."""

import pytest

from repro.chase.containment import is_equivalent
from repro.errors import QueryValidationError
from repro.model.instance import Instance
from repro.model.values import Row
from repro.physical.views import MaterializedView
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.unfold import is_equivalent_by_unfolding, unfold_all, unfold_view


def q(text):
    return parse_query(text)


@pytest.fixture
def view():
    return MaterializedView(
        "V",
        q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B"),
    )


class TestUnfoldView:
    def test_simple_unfold(self, view):
        plan = q("select struct(X = v.A, Y = v.C) from V v")
        unfolded = unfold_view(plan, view)
        assert "V" not in unfolded.schema_names()
        assert unfolded.schema_names() == frozenset({"R", "S"})
        # semantically the base join
        base = q("select struct(X = r.A, Y = s.C) from R r, S s where r.B = s.B")
        assert is_equivalent(unfolded, base)

    def test_unfold_with_selection(self, view):
        plan = q("select struct(X = v.A) from V v where v.C = 3")
        unfolded = unfold_view(plan, view)
        base = q("select struct(X = r.A) from R r, S s where r.B = s.B and s.C = 3")
        assert is_equivalent(unfolded, base)

    def test_unfold_multiple_scans(self, view):
        plan = q(
            "select struct(X = v.A, Y = w.A) from V v, V w where v.C = w.C"
        )
        unfolded = unfold_view(plan, view)
        assert "V" not in unfolded.schema_names()
        assert len(unfolded.bindings) == 4

    def test_view_var_as_whole_value_rejected(self, view):
        plan = q("select struct(X = u.A) from V u, V w where u = w")
        with pytest.raises(QueryValidationError):
            unfold_view(plan, view)

    def test_unknown_field_rejected(self, view):
        plan = q("select struct(X = v.Nope) from V v")
        with pytest.raises(QueryValidationError):
            unfold_view(plan, view)

    def test_no_view_scan_is_identity(self, view):
        plan = q("select struct(X = r.A) from R r")
        assert unfold_view(plan, view) is plan


class TestUnfoldAll:
    def test_views_over_views(self, view):
        top = MaterializedView("W", q("select struct(A = v.A) from V v"))
        plan = q("select struct(X = w.A) from W w")
        unfolded = unfold_all(plan, [view, top])
        assert unfolded.schema_names() == frozenset({"R", "S"})

    def test_semantics_preserved_on_instance(self, view):
        instance = Instance(
            {
                "R": frozenset({Row(A=1, B=5), Row(A=2, B=6)}),
                "S": frozenset({Row(B=5, C=10), Row(B=6, C=20)}),
            }
        )
        view.install(instance)
        plan = q("select struct(X = v.A, Y = v.C) from V v where v.C = 10")
        unfolded = unfold_all(plan, [view])
        assert evaluate(plan, instance) == evaluate(unfolded, instance)


class TestEquivalenceByUnfolding:
    def test_matches_chase_based_equivalence(self, view):
        plan = q("select struct(A = v.A, C = v.C) from V v")
        base = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        assert is_equivalent_by_unfolding(plan, base, [view])
        assert is_equivalent(plan, base, view.constraints())

    def test_detects_inequivalence(self, view):
        plan = q("select struct(A = v.A, C = v.C) from V v where v.C = 1")
        base = q("select struct(A = r.A, C = s.C) from R r, S s where r.B = s.B")
        assert not is_equivalent_by_unfolding(plan, base, [view])

    def test_cross_check_on_optimizer_output(self, rs_workload):
        """Every unrefined view-plan the optimizer emits is equivalent to
        the query by independent unfolding."""

        from repro.optimizer.optimizer import Optimizer
        from repro.query.paths import Lookup, NFLookup

        wl = rs_workload
        # full enumeration: the scan below wants the whole plan space
        opt = Optimizer(
            wl.constraints,
            physical_names=wl.physical_names,
            statistics=wl.statistics,
            strategy="full",
        )
        result = opt.optimize(wl.query)
        checked = 0
        for plan in result.plans:
            names = plan.query.schema_names()
            uses_index = any(
                isinstance(t, (Lookup, NFLookup))
                for path in plan.query.all_paths()
                for t in __import__("repro.query.paths", fromlist=["subterms"]).subterms(path)
            )
            if uses_index or not names <= {"R", "S", "V"}:
                continue  # unfolding covers pure view plans only
            assert is_equivalent_by_unfolding(plan.query, wl.query, wl.views)
            checked += 1
        assert checked >= 1
