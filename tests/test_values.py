"""Unit tests for runtime values."""

import pytest

from repro.errors import TypeMismatchError
from repro.model.types import (
    BOOL,
    INT,
    STRING,
    OidType,
    dict_of,
    relation,
    set_of,
    struct,
)
from repro.model.values import (
    DictValue,
    Oid,
    Row,
    freeze,
    row,
    sort_key,
    type_check,
)


class TestRow:
    def test_row_access(self):
        r = Row(A=1, B="x")
        assert r["A"] == 1
        assert r["B"] == "x"
        with pytest.raises(KeyError):
            r["C"]

    def test_row_equality_and_hash(self):
        assert Row(A=1, B=2) == Row(B=2, A=1)
        assert hash(Row(A=1)) == hash(Row(A=1))
        assert Row(A=1) != Row(A=2)

    def test_rows_in_frozensets(self):
        s = frozenset({Row(A=1), Row(A=1), Row(A=2)})
        assert len(s) == 2

    def test_row_replace(self):
        r = Row(A=1, B=2)
        assert r.replace(B=3) == Row(A=1, B=3)
        assert r["B"] == 2  # original untouched

    def test_row_mapping_protocol(self):
        r = Row(A=1, B=2)
        assert sorted(r) == ["A", "B"]
        assert len(r) == 2
        assert dict(r) == {"A": 1, "B": 2}


class TestOid:
    def test_oid_identity(self):
        assert Oid("Dept", 1) == Oid("Dept", 1)
        assert Oid("Dept", 1) != Oid("Dept", 2)
        assert Oid("Dept", 1) != Oid("Proj", 1)

    def test_oid_hash_and_order(self):
        assert hash(Oid("D", 1)) == hash(Oid("D", 1))
        assert Oid("D", 1) < Oid("D", 2)


class TestDictValue:
    def test_lookup_and_domain(self):
        d = DictValue({"a": 1, "b": 2})
        assert d.lookup("a") == 1
        assert d.domain() == frozenset({"a", "b"})

    def test_failing_lookup_raises(self):
        with pytest.raises(KeyError):
            DictValue({}).lookup("missing")

    def test_nonfailing_lookup(self):
        d = DictValue({"a": frozenset({1})})
        assert d.nonfailing_lookup("a") == frozenset({1})
        assert d.nonfailing_lookup("zzz") == frozenset()

    def test_mapping_protocol(self):
        d = DictValue({"a": 1})
        assert "a" in d
        assert len(d) == 1
        assert d.get("zzz", 42) == 42


class TestFreeze:
    def test_freeze_nested(self):
        v = freeze({"A": [1, 2], "B": {"C": 3}})
        assert isinstance(v, Row)
        assert v["A"] == frozenset({1, 2})
        assert v["B"] == Row(C=3)

    def test_row_helper(self):
        r = row(A=1, Tags={"x", "y"})
        assert r["Tags"] == frozenset({"x", "y"})

    def test_freeze_rejects_unknown(self):
        with pytest.raises(TypeMismatchError):
            freeze(object())


class TestTypeCheck:
    def test_base_values(self):
        type_check("x", STRING)
        type_check(3, INT)
        type_check(True, BOOL)

    def test_bool_not_int(self):
        with pytest.raises(TypeMismatchError):
            type_check(True, INT)
        with pytest.raises(TypeMismatchError):
            type_check(1, BOOL)

    def test_struct_check(self):
        type_check(Row(A=1), struct(A=INT))
        with pytest.raises(TypeMismatchError):
            type_check(Row(A=1, B=2), struct(A=INT))
        with pytest.raises(TypeMismatchError):
            type_check(Row(A="x"), struct(A=INT))

    def test_relation_check(self):
        type_check(frozenset({Row(A=1)}), relation(A=INT))
        with pytest.raises(TypeMismatchError):
            type_check([Row(A=1)], relation(A=INT))

    def test_dict_check(self):
        ty = dict_of(STRING, set_of(INT))
        type_check(DictValue({"a": frozenset({1})}), ty)
        with pytest.raises(TypeMismatchError):
            type_check(DictValue({1: frozenset({1})}), ty)

    def test_oid_check(self):
        type_check(Oid("Dept", 1), OidType("Dept"))
        with pytest.raises(TypeMismatchError):
            type_check(Oid("Proj", 1), OidType("Dept"))


class TestSortKey:
    def test_sort_key_total_order(self):
        values = [Row(A=1), "z", 3, Oid("D", 1), frozenset({1}), True]
        ordered = sorted(values, key=sort_key)
        assert len(ordered) == len(values)

    def test_sort_key_deterministic(self):
        assert sort_key(Row(A=1)) == sort_key(Row(A=1))
