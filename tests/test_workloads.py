"""Tests for the workload generators: consistency and shape."""

from repro.constraints.checker import check_all
from repro.query.evaluator import evaluate
from repro.query.typing import typecheck_query


class TestProjDept:
    def test_instance_satisfies_all_constraints(self, projdept):
        assert check_all(projdept.constraints, projdept.instance) == []

    def test_instance_well_typed(self, projdept):
        assert projdept.instance.validate(projdept.combined) == []

    def test_query_typechecks(self, projdept):
        typed = typecheck_query(projdept.query, projdept.combined, strict=True)
        assert typed.output_type is not None

    def test_reference_plans_agree(self, projdept):
        reference = evaluate(projdept.query, projdept.instance)
        for name, plan in projdept.reference_plans.items():
            assert evaluate(plan, projdept.instance) == reference, name

    def test_citibank_share_controls_selectivity(self):
        from repro.workloads.projdept import build_projdept

        few = build_projdept(n_depts=10, projs_per_dept=5, citibank_share=0.05, seed=1)
        many = build_projdept(n_depts=10, projs_per_dept=5, citibank_share=0.9, seed=1)

        def citibank_count(wl):
            return sum(1 for r in wl.instance["Proj"] if r["CustName"] == "CitiBank")

        assert citibank_count(few) < citibank_count(many)

    def test_statistics_collected(self, projdept):
        assert projdept.statistics.card("Proj") == len(projdept.instance["Proj"])
        assert projdept.statistics.card("SI") >= 1

    def test_deterministic_by_seed(self):
        from repro.workloads.projdept import build_projdept

        a = build_projdept(n_depts=3, projs_per_dept=2, seed=42)
        b = build_projdept(n_depts=3, projs_per_dept=2, seed=42)
        assert a.instance["Proj"] == b.instance["Proj"]


class TestRabc:
    def test_constraints_hold(self, rabc):
        assert check_all(rabc.constraints, rabc.instance) == []

    def test_shapes(self, rabc):
        assert rabc.statistics.card("R") == 300
        assert "SA" in rabc.instance and "SB" in rabc.instance
        assert rabc.query.binding_vars() == ("r",)

    def test_query_typechecks(self, rabc):
        typecheck_query(rabc.query, rabc.schema, strict=True)


class TestRs:
    def test_constraints_hold(self, rs_workload):
        assert check_all(rs_workload.constraints, rs_workload.instance) == []

    def test_view_is_small(self, rs_workload):
        # the scenario requires |V| << |R ⋈ S| for the view plan to pay off
        assert len(rs_workload.instance["V"]) <= len(rs_workload.instance["R"])

    def test_query_typechecks(self, rs_workload):
        typecheck_query(rs_workload.query, rs_workload.schema, strict=True)
